"""Scenario-grid sweeps: many layouts / behaviours / channels, one report.

The paper evaluates one office and one behaviour profile.  This module
turns the reproduction into a *sweep engine*: a declarative
:class:`ScenarioGrid` enumerates the cartesian product of office layouts,
behaviour scales, radio-channel configurations, FADEWICH configurations and
replicate seeds, and a :class:`ScenarioSweepRunner` executes the whole grid
through the batch machinery built in the previous PRs:

* every scenario's days are collected through
  :meth:`~repro.simulation.runner.CampaignRunner.run_tasks`, so days of
  *different* scenarios share one worker pool;
* every recording is analysed through a per-scenario
  :class:`~repro.analysis.campaign.AnalysisContext`, whose
  :meth:`~repro.analysis.campaign.AnalysisContext.md_evaluations` batch
  path shares one rolling feature matrix per day and advances all sensor
  counts in lockstep (the columnar engine of PR 2);
* RE accuracy is computed through the vectorised cross-validation path.

Reproducibility
---------------

All randomness derives from one root :class:`numpy.random.SeedSequence`:
scenario ``i`` owns the child ``(SCENARIO_DOMAIN, i)`` of the sweep root,
and its recording is bit-identical to a serial
``CampaignCollector(layout, channel_config=..., seed=child).collect_generated(...)``
— the scenario tests lock this equivalence.  Replicates are ordinary grid
points (each gets its own scenario index, hence its own child seed), so a
grid is reproducible from a single integer.

The result is a :class:`SweepReport`: per-scenario Table-III-style MD rows
and RE accuracies, a cross-scenario summary, a text rendering and a JSON
export for downstream tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.config import FadewichConfig
from ..radio.channel import ChannelConfig
from ..radio.office import OfficeLayout
from ..simulation.collector import (
    SCENARIO_DOMAIN,
    CampaignCollector,
    CampaignRecording,
    derive_seed_sequence,
)
from ..simulation.runner import CampaignRunner, DayTask
from .campaign import AnalysisContext, CampaignScale
from .md_performance import MDTableRow

__all__ = [
    "ScenarioSpec",
    "ScenarioGrid",
    "ScenarioResult",
    "SweepReport",
    "ScenarioSweepRunner",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully resolved grid point.

    ``index`` is the scenario's position in the grid's deterministic
    enumeration order (layouts, then scales, then channels, then configs,
    then replicates) and keys its derived seed; ``name`` is the
    human-readable ``layout/scale/channel/config/rN`` path used in reports.
    """

    index: int
    name: str
    layout: OfficeLayout
    scale: CampaignScale
    channel_name: str
    channel_config: ChannelConfig
    config_name: str
    config: FadewichConfig
    replicate: int

    def simulation_key(self) -> Tuple[str, str, str, int]:
        """The identity of this scenario's *simulated* campaign.

        The FADEWICH config only affects analysis, not simulation, so
        scenarios differing solely in ``config`` share one recording (and
        one derived seed): config effects are measured on identical data.
        """
        return (self.layout.name, self.scale.name, self.channel_name, self.replicate)

    def describe(self) -> Dict[str, object]:
        """The JSON-friendly identity of this scenario."""
        return {
            "index": self.index,
            "name": self.name,
            "layout": self.layout.name,
            "scale": self.scale.name,
            "channel": self.channel_name,
            "config": self.config_name,
            "replicate": self.replicate,
            "n_days": self.scale.n_days,
            "day_duration_s": self.scale.day_duration_s,
            "n_workstations": len(self.layout.workstations),
            "n_sensors_available": len(self.layout.sensors),
        }


class ScenarioGrid:
    """A declarative cartesian product of sweep axes.

    Parameters
    ----------
    layouts:
        Office layouts; names (``layout.name``) must be unique.
    scales:
        Behaviour/scale axis (:class:`~repro.analysis.campaign.CampaignScale`
        values, e.g. built with :meth:`CampaignScale.derive`); names must be
        unique.
    channel_configs:
        Named radio-channel configurations (``{"default": ChannelConfig()}``
        when omitted).
    configs:
        Named FADEWICH configurations (``{"default": FadewichConfig()}``
        when omitted); build variants with :meth:`FadewichConfig.derive`.
    n_replicates:
        Independent repetitions of every combination; each replicate is its
        own grid point with its own derived seed.
    sensor_counts:
        MD sensor-count sweep evaluated inside every scenario (counts
        exceeding a layout's deployment are skipped for that scenario);
        every count from 3 to the layout's maximum when omitted.
    """

    def __init__(
        self,
        layouts: Sequence[OfficeLayout],
        scales: Sequence[CampaignScale],
        channel_configs: Optional[Mapping[str, ChannelConfig]] = None,
        configs: Optional[Mapping[str, FadewichConfig]] = None,
        *,
        n_replicates: int = 1,
        sensor_counts: Optional[Sequence[int]] = None,
    ) -> None:
        self.layouts = tuple(layouts)
        self.scales = tuple(scales)
        self.channel_configs = dict(
            channel_configs
            if channel_configs is not None
            else {"default": ChannelConfig()}
        )
        self.configs = dict(
            configs if configs is not None else {"default": FadewichConfig()}
        )
        if not self.layouts:
            raise ValueError("grid needs at least one layout")
        if not self.scales:
            raise ValueError("grid needs at least one scale")
        if not self.channel_configs or not self.configs:
            raise ValueError("grid needs at least one channel config and config")
        if n_replicates < 1:
            raise ValueError("n_replicates must be >= 1")
        layout_names = [layout.name for layout in self.layouts]
        if len(set(layout_names)) != len(layout_names):
            raise ValueError(f"layout names must be unique, got {layout_names}")
        scale_names = [scale.name for scale in self.scales]
        if len(set(scale_names)) != len(scale_names):
            raise ValueError(f"scale names must be unique, got {scale_names}")
        self.n_replicates = int(n_replicates)
        self.sensor_counts = (
            tuple(int(n) for n in sensor_counts)
            if sensor_counts is not None
            else None
        )

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return (
            len(self.layouts)
            * len(self.scales)
            * len(self.channel_configs)
            * len(self.configs)
            * self.n_replicates
        )

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self.scenarios())

    def scenarios(self) -> List[ScenarioSpec]:
        """All grid points in deterministic enumeration order."""
        specs: List[ScenarioSpec] = []
        index = 0
        for layout in self.layouts:
            for scale in self.scales:
                for channel_name, channel_config in self.channel_configs.items():
                    for config_name, config in self.configs.items():
                        for replicate in range(self.n_replicates):
                            specs.append(
                                ScenarioSpec(
                                    index=index,
                                    name=(
                                        f"{layout.name}/{scale.name}/"
                                        f"{channel_name}/{config_name}/"
                                        f"r{replicate}"
                                    ),
                                    layout=layout,
                                    scale=scale,
                                    channel_name=channel_name,
                                    channel_config=channel_config,
                                    config_name=config_name,
                                    config=config,
                                    replicate=replicate,
                                )
                            )
                            index += 1
        return specs

    def sensor_counts_for(self, layout: OfficeLayout) -> List[int]:
        """The MD sensor-count sweep applicable to one layout."""
        n_max = len(layout.sensors)
        if self.sensor_counts is None:
            return list(range(min(3, n_max), n_max + 1))
        return [n for n in self.sensor_counts if n <= n_max]


@dataclass
class ScenarioResult:
    """The analysed outcome of one scenario.

    ``recording`` is ``None`` when the sweep ran with
    ``keep_recordings=False`` (large grids would otherwise pin every
    scenario's raw RSSI arrays in memory for the report's lifetime); the
    event statistics are captured as plain ints either way.
    """

    spec: ScenarioSpec
    n_events: int
    n_departures: int
    md_rows: List[MDTableRow]
    re_accuracies: Dict[int, float] = field(default_factory=dict)
    recording: Optional[CampaignRecording] = None

    def best_f_measure(self) -> Optional[Tuple[int, float]]:
        """``(n_sensors, f)`` of the best-performing sensor count.

        ``None`` when the scenario evaluated no sensor counts (every
        requested count exceeded the layout's deployment).
        """
        if not self.md_rows:
            return None
        best = max(self.md_rows, key=lambda row: row.counts.f_measure)
        return best.n_sensors, best.counts.f_measure

    def to_dict(self) -> Dict[str, object]:
        md = []
        for row in self.md_rows:
            c = row.counts
            md.append(
                {
                    "n_sensors": row.n_sensors,
                    "tp": c.tp,
                    "fp": c.fp,
                    "fn": c.fn,
                    # rates() reuses the tp/fp/fn names for fractions;
                    # suffix them so they cannot clobber the counts.
                    **{
                        f"{k}_rate": round(v, 6) for k, v in row.rates.items()
                    },
                    "precision": round(c.precision, 6),
                    "recall": round(c.recall, 6),
                    "f_measure": round(c.f_measure, 6),
                }
            )
        return {
            "scenario": self.spec.describe(),
            "n_events": self.n_events,
            "n_departures": self.n_departures,
            "md": md,
            "re_accuracy": {
                str(n): round(acc, 6) for n, acc in self.re_accuracies.items()
            },
        }


@dataclass
class SweepReport:
    """Aggregate outcome of a whole scenario grid."""

    results: List[ScenarioResult]
    seed_entropy: object = None

    @property
    def n_scenarios(self) -> int:
        return len(self.results)

    def result_for(self, name: str) -> ScenarioResult:
        """Look up a scenario result by its grid-path name."""
        for result in self.results:
            if result.spec.name == name:
                return result
        raise KeyError(f"no scenario named {name!r}")

    def summary(self) -> List[Dict[str, float]]:
        """Cross-scenario MD statistics per sensor count.

        For every sensor count evaluated anywhere in the grid: how many
        scenarios evaluated it and the mean / min / max F-measure and
        recall across them.
        """
        per_count: Dict[int, List[MDTableRow]] = {}
        for result in self.results:
            for row in result.md_rows:
                per_count.setdefault(row.n_sensors, []).append(row)
        summary = []
        for n in sorted(per_count):
            f_values = [row.counts.f_measure for row in per_count[n]]
            recalls = [row.counts.recall for row in per_count[n]]
            summary.append(
                {
                    "n_sensors": n,
                    "n_scenarios": len(f_values),
                    "f_mean": float(np.mean(f_values)),
                    "f_min": float(np.min(f_values)),
                    "f_max": float(np.max(f_values)),
                    "recall_mean": float(np.mean(recalls)),
                }
            )
        return summary

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_scenarios": self.n_scenarios,
            "seed_entropy": self.seed_entropy,
            "scenarios": [result.to_dict() for result in self.results],
            "summary": [
                {
                    key: (round(value, 6) if isinstance(value, float) else value)
                    for key, value in row.items()
                }
                for row in self.summary()
            ],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path) -> None:
        """Write the JSON export for downstream tooling."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    def render(self) -> str:
        """The aggregate report as text: per-scenario rates + summary."""
        lines = [f"Scenario sweep: {self.n_scenarios} scenarios"]
        for result in self.results:
            lines.append(
                f"-- {result.spec.name} "
                f"({result.n_events} events, {result.n_departures} departures) --"
            )
            lines.append(
                f"{'sensors':>8} | {'TP':>10} | {'FP':>10} | {'FN':>10} | "
                f"{'F':>6}"
            )
            for row in result.md_rows:
                r, c = row.rates, row.counts
                lines.append(
                    f"{row.n_sensors:>8} | "
                    f"{r['tp']:.2f} ({c.tp:>3}) | "
                    f"{r['fp']:.2f} ({c.fp:>3}) | "
                    f"{r['fn']:.2f} ({c.fn:>3}) | "
                    f"{c.f_measure:6.3f}"
                )
            for n, acc in sorted(result.re_accuracies.items()):
                lines.append(f"RE accuracy ({n} sensors): {acc:.3f}")
            best = result.best_f_measure()
            if best is None:
                lines.append("no applicable sensor counts for this layout")
            else:
                n_best, f_best = best
                lines.append(
                    f"best MD F-measure: {f_best:.3f} at {n_best} sensors"
                )
        lines.append("")
        lines.append("cross-scenario summary (MD F-measure per sensor count)")
        lines.append(
            f"{'sensors':>8} | {'scenarios':>9} | {'mean F':>7} | "
            f"{'min F':>7} | {'max F':>7} | {'mean recall':>11}"
        )
        for row in self.summary():
            lines.append(
                f"{row['n_sensors']:>8} | {row['n_scenarios']:>9} | "
                f"{row['f_mean']:7.3f} | {row['f_min']:7.3f} | "
                f"{row['f_max']:7.3f} | {row['recall_mean']:11.3f}"
            )
        return "\n".join(lines)


class ScenarioSweepRunner:
    """Executes a :class:`ScenarioGrid` end to end.

    Parameters
    ----------
    grid:
        The scenario grid (or an explicit list of :class:`ScenarioSpec`).
    seed:
        Root seed of the whole sweep; scenario ``i`` derives the child
        ``(SCENARIO_DOMAIN, i)``.
    mode / max_workers:
        Forwarded to the underlying :class:`CampaignRunner` pool; all days
        of all scenarios share it.
    analysis_seed:
        Seed of the per-scenario analysis (CV shuffles), shared across
        scenarios so analysis randomness never confounds scenario effects.
    re_sensor_counts:
        Sensor counts at which RE accuracy is cross-validated per scenario;
        default: each scenario's maximum count.  Pass ``()`` to skip the RE
        stage (MD-only sweeps are much cheaper).
    keep_recordings:
        Whether :class:`ScenarioResult` retains each scenario's raw
        :class:`CampaignRecording` (default).  Disable for large grids: the
        report only needs the aggregated numbers, while the recordings pin
        every scenario's per-sample RSSI arrays in memory.
    """

    def __init__(
        self,
        grid: Union[ScenarioGrid, Sequence[ScenarioSpec]],
        *,
        seed: Union[int, np.random.SeedSequence, None] = 0,
        mode: str = "process",
        max_workers: Optional[int] = None,
        analysis_seed: int = 0,
        re_sensor_counts: Optional[Sequence[int]] = None,
        keep_recordings: bool = True,
    ) -> None:
        if isinstance(grid, ScenarioGrid):
            self._grid: Optional[ScenarioGrid] = grid
            self._specs = grid.scenarios()
        else:
            self._grid = None
            self._specs = list(grid)
        if not self._specs:
            raise ValueError("the scenario grid is empty")
        if isinstance(seed, np.random.SeedSequence):
            self._root = seed
        else:
            self._root = np.random.SeedSequence(seed)
        self._mode = mode
        self._max_workers = max_workers
        self._analysis_seed = analysis_seed
        self._re_sensor_counts = (
            tuple(int(n) for n in re_sensor_counts)
            if re_sensor_counts is not None
            else None
        )
        self._keep_recordings = keep_recordings
        # Scenarios differing only in FADEWICH config simulate the same
        # campaign; enumerate the distinct simulations in spec order so
        # their seed derivation is reproducible from the root alone.  The
        # key is name-based, so explicit spec lists (which bypass the
        # grid's name-uniqueness validation) must not alias specs whose
        # names coincide but whose simulation inputs differ — that would
        # silently analyse the wrong data.
        self._sim_indices: Dict[Tuple[str, str, str, int], int] = {}
        sim_inputs: Dict[Tuple[str, str, str, int], Tuple] = {}
        for spec in self._specs:
            key = spec.simulation_key()
            inputs = (spec.layout, spec.scale, spec.channel_config)
            if key not in self._sim_indices:
                self._sim_indices[key] = len(self._sim_indices)
                sim_inputs[key] = inputs
            elif sim_inputs[key] != inputs:
                raise ValueError(
                    f"scenarios with simulation key {key} have conflicting "
                    "layout/scale/channel definitions; give distinct names "
                    "to distinct simulation inputs"
                )

    # ------------------------------------------------------------------ #
    @property
    def specs(self) -> List[ScenarioSpec]:
        return list(self._specs)

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        return self._root

    def scenario_seed(self, spec: ScenarioSpec) -> np.random.SeedSequence:
        """The derived seed root of a scenario's simulated campaign.

        Keyed by the scenario's *simulation* identity: config-only variants
        of the same campaign share the seed (and hence the recording).
        """
        return derive_seed_sequence(
            self._root, SCENARIO_DOMAIN, self._sim_indices[spec.simulation_key()]
        )

    def _sensor_counts_for(self, spec: ScenarioSpec) -> List[int]:
        if self._grid is not None:
            return self._grid.sensor_counts_for(spec.layout)
        n_max = len(spec.layout.sensors)
        return list(range(min(3, n_max), n_max + 1))

    # ------------------------------------------------------------------ #
    def collect(self) -> List[Tuple[ScenarioSpec, CampaignRecording]]:
        """Collect every scenario's campaign on one shared worker pool.

        Schedule generation runs serially per scenario (it is cheap and
        stateful on the scenario's structural stream); day collection fans
        out across scenarios through
        :meth:`CampaignRunner.run_tasks`.  Each scenario's recording is
        bit-identical to a serial ``collect_generated`` with the same
        derived seed.
        """
        tasks: List[DayTask] = []
        spans: Dict[Tuple[str, str, str, int], Tuple[int, int]] = {}
        sim_specs: Dict[Tuple[str, str, str, int], ScenarioSpec] = {}
        for spec in self._specs:
            key = spec.simulation_key()
            if key in spans:
                continue  # config-only variant: shares the recording
            sim_specs[key] = spec
            scenario_seed = self.scenario_seed(spec)
            collector = CampaignCollector(
                spec.layout,
                channel_config=spec.channel_config,
                seed=scenario_seed,
            )
            schedule = collector.make_schedule(
                spec.scale.n_days,
                spec.scale.day_duration_s,
                spec.scale.profiles_for(spec.layout),
            )
            base = collector.next_generated_base()
            start = len(tasks)
            tasks.extend(
                DayTask(
                    day=day,
                    seed_seq=scenario_seed,
                    seed_base=base,
                    layout=spec.layout,
                    channel_config=spec.channel_config,
                )
                for day in schedule.days
            )
            spans[key] = (start, len(tasks))
        runner = CampaignRunner(
            self._specs[0].layout,
            seed=self._root,
            mode=self._mode,
            max_workers=self._max_workers,
        )
        days = runner.run_tasks(tasks)
        recordings = {
            key: CampaignRecording(
                days=days[a:b], layout=sim_specs[key].layout
            )
            for key, (a, b) in spans.items()
        }
        return [
            (spec, recordings[spec.simulation_key()]) for spec in self._specs
        ]

    def analyze(
        self, spec: ScenarioSpec, recording: CampaignRecording
    ) -> ScenarioResult:
        """Run the batch MD / RE analysis of one scenario recording."""
        context = AnalysisContext(recording, spec.config, seed=self._analysis_seed)
        counts = self._sensor_counts_for(spec)
        evaluations = context.md_evaluations(counts)
        md_rows = [
            MDTableRow(n_sensors=n, counts=evaluations[n].counts) for n in counts
        ]
        if self._re_sensor_counts is None:
            re_counts: Sequence[int] = [max(counts)] if counts else []
        else:
            re_counts = [n for n in self._re_sensor_counts if n in set(counts)]
        re_accuracies = {n: context.re_accuracy(n) for n in re_counts}
        return ScenarioResult(
            spec=spec,
            n_events=recording.total_labelled_events(),
            n_departures=recording.total_departures(),
            md_rows=md_rows,
            re_accuracies=re_accuracies,
            recording=recording if self._keep_recordings else None,
        )

    def run(self) -> SweepReport:
        """Collect and analyse the whole grid, returning the report."""
        results = [
            self.analyze(spec, recording) for spec, recording in self.collect()
        ]
        entropy = self._root.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = list(entropy)
        return SweepReport(results=results, seed_entropy=entropy)

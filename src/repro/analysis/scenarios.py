"""Scenario-grid sweeps: many layouts / behaviours / channels, one report.

The paper evaluates one office and one behaviour profile.  This module
turns the reproduction into a *sweep engine*: a declarative
:class:`ScenarioGrid` enumerates the cartesian product of office layouts,
behaviour scales, radio-channel configurations, FADEWICH configurations and
replicate seeds, and a :class:`ScenarioSweepRunner` executes the whole grid
through the batch machinery built in the previous PRs:

* every scenario's days are collected through
  :meth:`~repro.simulation.runner.CampaignRunner.run_tasks`, so days of
  *different* scenarios share one worker pool;
* every recording is analysed through a per-scenario
  :class:`~repro.analysis.campaign.AnalysisContext`, whose
  :meth:`~repro.analysis.campaign.AnalysisContext.md_evaluations` batch
  path shares one rolling feature matrix per day and advances all sensor
  counts in lockstep (the columnar engine of PR 2);
* RE accuracy is computed through the vectorised cross-validation path.

Reproducibility
---------------

All randomness derives from one root :class:`numpy.random.SeedSequence`:
scenario ``i`` owns the child ``(SCENARIO_DOMAIN, i)`` of the sweep root,
and its recording is bit-identical to a serial
``CampaignCollector(layout, channel_config=..., seed=child).collect_generated(...)``
— the scenario tests lock this equivalence.  Replicates are ordinary grid
points (each gets its own scenario index, hence its own child seed), so a
grid is reproducible from a single integer.

The result is a :class:`SweepReport`: per-scenario Table-III-style MD rows
and RE accuracies, a cross-scenario summary, per-cell replicate statistics
(:meth:`SweepReport.cell_statistics`), a text rendering and a JSON export
that round-trips losslessly (:meth:`SweepReport.load`).

Resumable sweeps
----------------

``run(store=SweepStore(path))`` persists every completed grid point as one
atomically-written JSON record and skips grid points whose record is
already present *and* was computed under the same root seed, seed-index
assignment, analysis seed and configuration content
(:meth:`ScenarioSweepRunner.store_key`); only the missing simulations are
compiled into day tasks (:meth:`ScenarioSweepRunner.collect` with
``needed=...``).  Because scenario seeds derive from the full grid's
enumeration (``_sim_indices``), a partially resumed grid re-collects
bit-identical recordings — a warm store performs *zero* day-collection
work and reproduces the cold report exactly.
"""

from __future__ import annotations

import json
import math
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Collection,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.config import FadewichConfig
from ..core.evaluation import CampaignStdFeatures
from ..detectors import KdeMdDetector, get_detector
from ..features.base import extractor_fingerprint
from ..features.rolling import RollingStdExtractor
from ..radio.channel import ChannelConfig
from ..radio.office import OfficeLayout
from ..simulation.collector import (
    SCENARIO_DOMAIN,
    CampaignCollector,
    CampaignRecording,
    derive_seed_sequence,
)
from ..simulation.runner import CampaignRunner, DayTask
from ..zones.estimator import ZoneAccuracy, ZoneOccupancyEstimator, score_walks
from .campaign import AnalysisContext, CampaignScale
from .md_performance import MDTableRow
from .sweep_store import (
    SweepStore,
    component_from_dict,
    component_to_dict,
    content_hash,
)

__all__ = [
    "ScenarioSpec",
    "ScenarioGrid",
    "ScenarioResult",
    "SweepReport",
    "ScenarioSweepRunner",
    "SweepRunStats",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully resolved grid point.

    ``index`` is the scenario's position in the grid's deterministic
    enumeration order (layouts, then scales, then channels, then configs,
    then detectors, then replicates) and keys its derived seed; ``name``
    is the human-readable ``layout/scale/channel/config/detector/rN`` path
    used in reports.
    """

    index: int
    name: str
    layout: OfficeLayout
    scale: CampaignScale
    channel_name: str
    channel_config: ChannelConfig
    config_name: str
    config: FadewichConfig
    replicate: int
    detector_name: str = "kde_md"
    detector: object = KdeMdDetector()

    def simulation_key(self) -> Tuple[str, str, str, int]:
        """The identity of this scenario's *simulated* campaign.

        The FADEWICH config and the detector only affect analysis, not
        simulation, so scenarios differing solely in ``config`` and/or
        ``detector`` share one recording (and one derived seed): their
        effects are measured on identical data.
        """
        return (self.layout.name, self.scale.name, self.channel_name, self.replicate)

    def describe(self) -> Dict[str, object]:
        """The JSON-friendly identity of this scenario."""
        return {
            "index": self.index,
            "name": self.name,
            "layout": self.layout.name,
            "scale": self.scale.name,
            "channel": self.channel_name,
            "config": self.config_name,
            "detector": self.detector_name,
            "replicate": self.replicate,
            "n_days": self.scale.n_days,
            "day_duration_s": self.scale.day_duration_s,
            "n_workstations": len(self.layout.workstations),
            "n_sensors_available": len(self.layout.sensors),
        }

    def content_hash(self) -> str:
        """Hash of everything that defines this scenario's behaviour.

        Covers the layout, behaviour scale, channel configuration,
        FADEWICH configuration and detector *content* (not just their
        names), so a store record computed under a renamed-but-equal
        configuration still matches while an edited-in-place configuration
        — or a swapped/retuned detector — never does.
        """
        return content_hash(
            self.layout, self.scale, self.channel_config, self.config, self.detector
        )

    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON form; :meth:`from_dict` rebuilds an equal spec."""
        return {
            "index": self.index,
            "name": self.name,
            "channel_name": self.channel_name,
            "config_name": self.config_name,
            "detector_name": self.detector_name,
            "replicate": self.replicate,
            "layout": component_to_dict(self.layout),
            "scale": component_to_dict(self.scale),
            "channel_config": component_to_dict(self.channel_config),
            "config": component_to_dict(self.config),
            "detector": component_to_dict(self.detector),
        }

    @staticmethod
    def from_dict(data: Mapping) -> "ScenarioSpec":
        # ``detector`` fields default for payloads written before the
        # detector axis existed (such records are version-invalidated at
        # the store layer anyway, but reports round-trip regardless).
        return ScenarioSpec(
            index=int(data["index"]),
            name=str(data["name"]),
            layout=component_from_dict(data["layout"]),
            scale=component_from_dict(data["scale"]),
            channel_name=str(data["channel_name"]),
            channel_config=component_from_dict(data["channel_config"]),
            config_name=str(data["config_name"]),
            config=component_from_dict(data["config"]),
            replicate=int(data["replicate"]),
            detector_name=str(data.get("detector_name", "kde_md")),
            detector=(
                component_from_dict(data["detector"])
                if "detector" in data
                else KdeMdDetector()
            ),
        )


class ScenarioGrid:
    """A declarative cartesian product of sweep axes.

    Parameters
    ----------
    layouts:
        Office layouts; names (``layout.name``) must be unique.
    scales:
        Behaviour/scale axis (:class:`~repro.analysis.campaign.CampaignScale`
        values, e.g. built with :meth:`CampaignScale.derive`); names must be
        unique.
    channel_configs:
        Named radio-channel configurations (``{"default": ChannelConfig()}``
        when omitted).
    configs:
        Named FADEWICH configurations (``{"default": FadewichConfig()}``
        when omitted); build variants with :meth:`FadewichConfig.derive`.
    detectors:
        The detector axis: registered names (``["kde_md", "ema_mad"]``),
        detector instances, or a ``{label: detector}`` mapping for tuned
        config variants.  Defaults to the paper's KDE-MD detector alone.
        Like config-only variants, detector variants of one scenario
        share a single recording, so members are compared head-to-head on
        identical data.  Unknown names, duplicate labels and duplicate
        detector configs under different labels are rejected at
        construction.
    n_replicates:
        Independent repetitions of every combination; each replicate is its
        own grid point with its own derived seed.
    sensor_counts:
        MD sensor-count sweep evaluated inside every scenario (counts
        exceeding a layout's deployment are skipped for that scenario);
        every count from 3 to the layout's maximum when omitted.
        Normalised to sorted unique values — duplicates would double-count
        scenarios in the cross-scenario summary — and counts below 1 are
        rejected.
    """

    def __init__(
        self,
        layouts: Sequence[OfficeLayout],
        scales: Sequence[CampaignScale],
        channel_configs: Optional[Mapping[str, ChannelConfig]] = None,
        configs: Optional[Mapping[str, FadewichConfig]] = None,
        *,
        detectors: Union[Mapping[str, object], Sequence[object], None] = None,
        n_replicates: int = 1,
        sensor_counts: Optional[Sequence[int]] = None,
    ) -> None:
        self.layouts = tuple(layouts)
        self.scales = tuple(scales)
        self.channel_configs = dict(
            channel_configs
            if channel_configs is not None
            else {"default": ChannelConfig()}
        )
        self.configs = dict(
            configs if configs is not None else {"default": FadewichConfig()}
        )
        self.detectors = self._normalise_detectors(detectors)
        if not self.layouts:
            raise ValueError("grid needs at least one layout")
        if not self.scales:
            raise ValueError("grid needs at least one scale")
        if not self.channel_configs or not self.configs:
            raise ValueError("grid needs at least one channel config and config")
        if n_replicates < 1:
            raise ValueError("n_replicates must be >= 1")
        layout_names = [layout.name for layout in self.layouts]
        if len(set(layout_names)) != len(layout_names):
            raise ValueError(f"layout names must be unique, got {layout_names}")
        scale_names = [scale.name for scale in self.scales]
        if len(set(scale_names)) != len(scale_names):
            raise ValueError(f"scale names must be unique, got {scale_names}")
        self.n_replicates = int(n_replicates)
        if sensor_counts is None:
            self.sensor_counts: Optional[Tuple[int, ...]] = None
        else:
            # Normalise to sorted unique: duplicate or unsorted counts
            # (e.g. [5, 5, 3]) would otherwise produce duplicate
            # MDTableRows per scenario that double-count in
            # SweepReport.summary() and cell_statistics().
            counts = sorted({int(n) for n in sensor_counts})
            if counts and counts[0] < 1:
                raise ValueError(
                    f"sensor counts must be >= 1, got {tuple(sensor_counts)}"
                )
            self.sensor_counts = tuple(counts)

    @staticmethod
    def _normalise_detectors(
        detectors: Union[Mapping[str, object], Sequence[object], None],
    ) -> Dict[str, object]:
        """Resolve the detector axis to a validated ``{label: instance}``.

        Sequence entries resolve through
        :func:`repro.detectors.get_detector` (unknown names raise with the
        registered list) and label themselves by registry name; a mapping
        supplies explicit labels for tuned variants.  Duplicate labels and
        duplicate detector configs are construction errors — either would
        silently double grid points that analyse identically.
        """
        if detectors is None:
            return {"kde_md": KdeMdDetector()}
        if isinstance(detectors, Mapping):
            items = [
                (str(label), get_detector(entry))
                for label, entry in detectors.items()
            ]
        else:
            items = []
            for entry in detectors:
                instance = get_detector(entry)
                items.append((type(instance).name, instance))
        if not items:
            raise ValueError("grid needs at least one detector")
        labels = [label for label, _ in items]
        duplicate_labels = sorted(
            label for label, count in Counter(labels).items() if count > 1
        )
        if duplicate_labels:
            raise ValueError(
                f"detector labels must be unique, got duplicates "
                f"{duplicate_labels}; pass a {{label: detector}} mapping to "
                "sweep config variants of one detector under distinct labels"
            )
        seen: Dict[object, str] = {}
        for label, instance in items:
            if instance in seen:
                raise ValueError(
                    f"detector variants {seen[instance]!r} and {label!r} have "
                    "identical configs — duplicate variants would double "
                    "identical grid points"
                )
            seen[instance] = label
        return dict(items)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return (
            len(self.layouts)
            * len(self.scales)
            * len(self.channel_configs)
            * len(self.configs)
            * len(self.detectors)
            * self.n_replicates
        )

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self.scenarios())

    def scenarios(self) -> List[ScenarioSpec]:
        """All grid points in deterministic enumeration order."""
        specs: List[ScenarioSpec] = []
        index = 0
        for layout in self.layouts:
            for scale in self.scales:
                for channel_name, channel_config in self.channel_configs.items():
                    for config_name, config in self.configs.items():
                        for det_name, detector in self.detectors.items():
                            for replicate in range(self.n_replicates):
                                specs.append(
                                    ScenarioSpec(
                                        index=index,
                                        name=(
                                            f"{layout.name}/{scale.name}/"
                                            f"{channel_name}/{config_name}/"
                                            f"{det_name}/r{replicate}"
                                        ),
                                        layout=layout,
                                        scale=scale,
                                        channel_name=channel_name,
                                        channel_config=channel_config,
                                        config_name=config_name,
                                        config=config,
                                        replicate=replicate,
                                        detector_name=det_name,
                                        detector=detector,
                                    )
                                )
                                index += 1
        return specs

    def sensor_counts_for(self, layout: OfficeLayout) -> List[int]:
        """The MD sensor-count sweep applicable to one layout."""
        n_max = len(layout.sensors)
        if self.sensor_counts is None:
            return list(range(min(3, n_max), n_max + 1))
        return [n for n in self.sensor_counts if n <= n_max]


@dataclass
class ScenarioResult:
    """The analysed outcome of one scenario.

    ``recording`` is ``None`` when the sweep ran with
    ``keep_recordings=False`` (large grids would otherwise pin every
    scenario's raw RSSI arrays in memory for the report's lifetime); the
    event statistics are captured as plain ints either way.
    """

    spec: ScenarioSpec
    n_events: int
    n_departures: int
    md_rows: List[MDTableRow]
    re_accuracies: Dict[int, float] = field(default_factory=dict)
    zone_accuracy: Optional[Dict[str, float]] = None
    recording: Optional[CampaignRecording] = None

    def best_f_measure(self) -> Optional[Tuple[int, float]]:
        """``(n_sensors, f)`` of the best-performing sensor count.

        ``None`` when the scenario evaluated no sensor counts (every
        requested count exceeded the layout's deployment).
        """
        if not self.md_rows:
            return None
        best = max(self.md_rows, key=lambda row: row.counts.f_measure)
        return best.n_sensors, best.counts.f_measure

    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON form (also the sweep-store record payload).

        ``scenario`` keeps the human-readable identity summary of earlier
        exports; ``spec`` carries the full configuration content so
        :meth:`from_dict` rebuilds an equal :class:`ScenarioSpec`.  RE
        accuracies are stored at full precision — they feed
        :meth:`SweepReport.cell_statistics`, so a resumed sweep must see
        exactly the values the cold run computed.
        """
        return {
            "scenario": self.spec.describe(),
            "spec": self.spec.to_dict(),
            "n_events": self.n_events,
            "n_departures": self.n_departures,
            "md": [row.to_dict() for row in self.md_rows],
            "re_accuracy": {
                str(n): float(acc) for n, acc in self.re_accuracies.items()
            },
            "zone_accuracy": (
                None
                if self.zone_accuracy is None
                else {k: v for k, v in self.zone_accuracy.items()}
            ),
        }

    @staticmethod
    def from_dict(data: Mapping) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output.

        ``recording`` is always ``None`` on the reconstructed result: raw
        RSSI traces are never persisted (only the aggregated numbers are),
        exactly like a ``keep_recordings=False`` run.
        """
        return ScenarioResult(
            spec=ScenarioSpec.from_dict(data["spec"]),
            n_events=int(data["n_events"]),
            n_departures=int(data["n_departures"]),
            md_rows=[MDTableRow.from_dict(row) for row in data["md"]],
            re_accuracies={
                int(n): float(acc)
                for n, acc in dict(data.get("re_accuracy", {})).items()
            },
            zone_accuracy=(
                None
                if data.get("zone_accuracy") is None
                else dict(data["zone_accuracy"])
            ),
            recording=None,
        )


def _entropy_json(seed_seq: np.random.SeedSequence):
    """A seed sequence's entropy as JSON-ready data (pooled entropy is a
    list)."""
    entropy = seed_seq.entropy
    if isinstance(entropy, (list, tuple)):
        entropy = list(entropy)
    return entropy


def _library_version() -> str:
    """The installed ``repro`` version, for store-record invalidation.

    Imported lazily: :mod:`repro` imports this module during package
    initialisation, so a module-level ``from .. import __version__`` would
    see a partially-initialised package.
    """
    from .. import __version__

    return __version__


def _mean_std_ci95(values: Sequence[float]) -> Tuple[float, float, float]:
    """NaN-safe replicate statistics: ``(mean, sample std, 95% CI half-width)``.

    Empty input yields all-NaN; a single value yields its mean with NaN
    spread (one replicate cannot estimate variance — reporting 0 would
    fabricate certainty).
    """
    if not values:
        return (math.nan, math.nan, math.nan)
    mean = float(np.mean(values))
    if len(values) < 2:
        return (mean, math.nan, math.nan)
    std = float(np.std(values, ddof=1))
    ci95 = 1.96 * std / math.sqrt(len(values))
    return (mean, std, ci95)


def _json_value(value):
    """Strict-JSON cell value: floats rounded, non-finite floats to None."""
    if isinstance(value, float):
        return round(value, 6) if math.isfinite(value) else None
    return value


def _pm(mean: float, ci95: float) -> str:
    """Render ``mean ± ci95`` with NaN-aware fallbacks."""
    if math.isnan(mean):
        return f"{'-':>13}"
    spread = "n/a" if math.isnan(ci95) else f"{ci95:.3f}"
    return f"{mean:.3f}±{spread:<5}"


@dataclass
class SweepReport:
    """Aggregate outcome of a whole scenario grid."""

    results: List[ScenarioResult]
    seed_entropy: object = None

    @property
    def n_scenarios(self) -> int:
        return len(self.results)

    def result_for(self, name: str) -> ScenarioResult:
        """Look up a scenario result by its grid-path name."""
        for result in self.results:
            if result.spec.name == name:
                return result
        raise KeyError(f"no scenario named {name!r}")

    def summary(self) -> List[Dict[str, float]]:
        """Cross-scenario MD statistics per sensor count.

        For every sensor count evaluated anywhere in the grid: how many
        scenarios evaluated it and the mean / min / max F-measure and
        recall across them.
        """
        per_count: Dict[int, List[MDTableRow]] = {}
        for result in self.results:
            for row in result.md_rows:
                per_count.setdefault(row.n_sensors, []).append(row)
        summary = []
        for n in sorted(per_count):
            f_values = [row.counts.f_measure for row in per_count[n]]
            recalls = [row.counts.recall for row in per_count[n]]
            summary.append(
                {
                    "n_sensors": n,
                    "n_scenarios": len(f_values),
                    "f_mean": float(np.mean(f_values)),
                    "f_min": float(np.min(f_values)),
                    "f_max": float(np.max(f_values)),
                    "recall_mean": float(np.mean(recalls)),
                }
            )
        return summary

    def cell_statistics(self) -> List[Dict[str, object]]:
        """Per-cell replicate statistics of the grid.

        Groups results by the cell ``(layout, scale, channel, config,
        detector)`` with the replicate axis marginalised, and reports —
        per cell and sensor count — the across-replicate mean, sample
        standard deviation and normal-approximation 95% confidence
        half-width (``1.96 * std / sqrt(r)``) of the MD F-measure, the MD
        recall and the RE accuracy.

        NaN-safety: a single-replicate cell has no spread estimate, so its
        ``*_std`` and ``*_ci95`` are NaN (*not* 0 — zero would claim
        certainty the data cannot support); a sensor count no replicate
        evaluated RE at has NaN RE statistics.
        """
        cells: Dict[Tuple[str, str, str, str, str], List[ScenarioResult]] = {}
        for result in self.results:
            spec = result.spec
            key = (
                spec.layout.name,
                spec.scale.name,
                spec.channel_name,
                spec.config_name,
                spec.detector_name,
            )
            cells.setdefault(key, []).append(result)
        rows: List[Dict[str, object]] = []
        for (layout, scale, channel, config, detector), results in cells.items():
            f_values: Dict[int, List[float]] = {}
            recall_values: Dict[int, List[float]] = {}
            re_values: Dict[int, List[float]] = {}
            for result in results:
                for row in result.md_rows:
                    f_values.setdefault(row.n_sensors, []).append(
                        row.counts.f_measure
                    )
                    recall_values.setdefault(row.n_sensors, []).append(
                        row.counts.recall
                    )
                for n, acc in result.re_accuracies.items():
                    re_values.setdefault(n, []).append(acc)
            for n in sorted(set(f_values) | set(re_values)):
                entry: Dict[str, object] = {
                    "layout": layout,
                    "scale": scale,
                    "channel": channel,
                    "config": config,
                    "detector": detector,
                    "n_sensors": n,
                    "n_replicates": len(f_values.get(n, re_values.get(n, []))),
                }
                for prefix, values in (
                    ("f", f_values.get(n, [])),
                    ("recall", recall_values.get(n, [])),
                    ("re", re_values.get(n, [])),
                ):
                    mean, std, ci95 = _mean_std_ci95(values)
                    entry[f"{prefix}_mean"] = mean
                    entry[f"{prefix}_std"] = std
                    entry[f"{prefix}_ci95"] = ci95
                rows.append(entry)
        return rows

    def zone_summary(self) -> List[Dict[str, object]]:
        """Per-scenario zone-occupancy accuracy, where the workload ran.

        One row per scenario carrying a :attr:`ScenarioResult.zone_accuracy`
        payload; empty when the sweep ran without a zone estimator.
        """
        rows: List[Dict[str, object]] = []
        for result in self.results:
            if result.zone_accuracy is None:
                continue
            rows.append(
                {"scenario": result.spec.name, **result.zone_accuracy}
            )
        return rows

    def detector_names(self) -> List[str]:
        """Sorted distinct detector labels appearing in the results."""
        return sorted({result.spec.detector_name for result in self.results})

    def detector_comparison(self) -> List[Dict[str, object]]:
        """Which detector wins, per cell and sensor count.

        Marginalises replicates and groups by ``(layout, scale, channel,
        config, n_sensors)``; each row reports the mean MD F-measure per
        detector label (``f_mean_by_detector``) and the winning label
        (``best_detector``).  The grid may be ragged — a detector absent
        from a cell is simply absent from that row's mapping, never a
        fabricated number.
        """
        cells: Dict[Tuple[str, str, str, str, int], Dict[str, List[float]]] = {}
        for result in self.results:
            spec = result.spec
            for row in result.md_rows:
                key = (
                    spec.layout.name,
                    spec.scale.name,
                    spec.channel_name,
                    spec.config_name,
                    row.n_sensors,
                )
                cells.setdefault(key, {}).setdefault(
                    spec.detector_name, []
                ).append(row.counts.f_measure)
        rows: List[Dict[str, object]] = []
        for (layout, scale, channel, config, n), by_detector in cells.items():
            f_means = {
                detector: float(np.mean(values))
                for detector, values in by_detector.items()
            }
            rows.append(
                {
                    "layout": layout,
                    "scale": scale,
                    "channel": channel,
                    "config": config,
                    "n_sensors": n,
                    "f_mean_by_detector": f_means,
                    "best_detector": max(f_means, key=f_means.__getitem__),
                }
            )
        return rows

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_scenarios": self.n_scenarios,
            "seed_entropy": self.seed_entropy,
            "scenarios": [result.to_dict() for result in self.results],
            "summary": [
                {
                    key: (round(value, 6) if isinstance(value, float) else value)
                    for key, value in row.items()
                }
                for row in self.summary()
            ],
            # NaN is not valid JSON; single-replicate spread estimates
            # export as null and load back as NaN.
            "cell_statistics": [
                {key: _json_value(value) for key, value in row.items()}
                for row in self.cell_statistics()
            ],
            "zone_summary": [
                {key: _json_value(value) for key, value in row.items()}
                for row in self.zone_summary()
            ],
            "detector_comparison": [
                {
                    **{
                        key: _json_value(value)
                        for key, value in row.items()
                        if key != "f_mean_by_detector"
                    },
                    "f_mean_by_detector": {
                        detector: _json_value(value)
                        for detector, value in row["f_mean_by_detector"].items()
                    },
                }
                for row in self.detector_comparison()
            ],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path) -> None:
        """Write the JSON export for downstream tooling."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @staticmethod
    def from_dict(data: Mapping) -> "SweepReport":
        """Rebuild a report from :meth:`to_dict` output.

        The per-scenario results (specs included) are reconstructed in
        full; ``summary`` and ``cell_statistics`` are derived data and are
        recomputed from the results rather than trusted from the file.
        """
        return SweepReport(
            results=[
                ScenarioResult.from_dict(entry) for entry in data["scenarios"]
            ],
            seed_entropy=data.get("seed_entropy"),
        )

    @staticmethod
    def from_json(text: str) -> "SweepReport":
        return SweepReport.from_dict(json.loads(text))

    @staticmethod
    def load(path) -> "SweepReport":
        """Read a report previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return SweepReport.from_json(handle.read())

    def render(self) -> str:
        """The aggregate report as text: per-scenario rates + summary."""
        lines = [f"Scenario sweep: {self.n_scenarios} scenarios"]
        for result in self.results:
            lines.append(
                f"-- {result.spec.name} "
                f"({result.n_events} events, {result.n_departures} departures) --"
            )
            lines.append(
                f"{'sensors':>8} | {'TP':>10} | {'FP':>10} | {'FN':>10} | "
                f"{'F':>6}"
            )
            for row in result.md_rows:
                r, c = row.rates, row.counts
                lines.append(
                    f"{row.n_sensors:>8} | "
                    f"{r['tp']:.2f} ({c.tp:>3}) | "
                    f"{r['fp']:.2f} ({c.fp:>3}) | "
                    f"{r['fn']:.2f} ({c.fn:>3}) | "
                    f"{c.f_measure:6.3f}"
                )
            for n, acc in sorted(result.re_accuracies.items()):
                lines.append(f"RE accuracy ({n} sensors): {acc:.3f}")
            if result.zone_accuracy is not None:
                za = result.zone_accuracy
                lines.append(
                    f"zone accuracy: {za['accuracy']:.3f} "
                    f"(coverage {za['coverage']:.3f} over "
                    f"{int(za['n_instants'])} instants)"
                )
            best = result.best_f_measure()
            if best is None:
                lines.append("no applicable sensor counts for this layout")
            else:
                n_best, f_best = best
                lines.append(
                    f"best MD F-measure: {f_best:.3f} at {n_best} sensors"
                )
        lines.append("")
        lines.append("cross-scenario summary (MD F-measure per sensor count)")
        lines.append(
            f"{'sensors':>8} | {'scenarios':>9} | {'mean F':>7} | "
            f"{'min F':>7} | {'max F':>7} | {'mean recall':>11}"
        )
        for row in self.summary():
            lines.append(
                f"{row['n_sensors']:>8} | {row['n_scenarios']:>9} | "
                f"{row['f_mean']:7.3f} | {row['f_min']:7.3f} | "
                f"{row['f_max']:7.3f} | {row['recall_mean']:11.3f}"
            )
        cells = self.cell_statistics()
        if cells:
            width = max(
                len(
                    f"{c['layout']}/{c['scale']}/{c['channel']}/"
                    f"{c['config']}/{c['detector']}"
                )
                for c in cells
            )
            lines.append("")
            lines.append(
                "replicate statistics per cell "
                "(mean ± ci95; n/a with a single replicate)"
            )
            lines.append(
                f"{'cell':>{width}} | {'sensors':>7} | {'reps':>4} | "
                f"{'F':>13} | {'recall':>13} | {'RE acc':>13}"
            )
            for c in cells:
                cell = (
                    f"{c['layout']}/{c['scale']}/{c['channel']}/"
                    f"{c['config']}/{c['detector']}"
                )
                lines.append(
                    f"{cell:>{width}} | {c['n_sensors']:>7} | "
                    f"{c['n_replicates']:>4} | "
                    f"{_pm(c['f_mean'], c['f_ci95']):>13} | "
                    f"{_pm(c['recall_mean'], c['recall_ci95']):>13} | "
                    f"{_pm(c['re_mean'], c['re_ci95']):>13}"
                )
        detectors = self.detector_names()
        if len(detectors) > 1:
            comparison = self.detector_comparison()
            width = max(
                len(f"{c['layout']}/{c['scale']}/{c['channel']}/{c['config']}")
                for c in comparison
            )
            col = max(8, *(len(d) for d in detectors))
            lines.append("")
            lines.append(
                "detector comparison (mean MD F-measure; "
                "'-' = not evaluated in that cell)"
            )
            header = f"{'cell':>{width}} | {'sensors':>7}"
            for detector in detectors:
                header += f" | {detector:>{col}}"
            header += " | best"
            lines.append(header)
            for c in comparison:
                cell = f"{c['layout']}/{c['scale']}/{c['channel']}/{c['config']}"
                line = f"{cell:>{width}} | {c['n_sensors']:>7}"
                # The grid may be ragged across detectors (a detector
                # missing from a cell, e.g. explicit spec lists or
                # layout-dependent sensor counts): blank the cell instead
                # of crashing or misaligning the table.
                f_means = c["f_mean_by_detector"]
                for detector in detectors:
                    if detector in f_means:
                        line += f" | {f_means[detector]:>{col}.3f}"
                    else:
                        line += f" | {'-':>{col}}"
                line += f" | {c['best_detector']}"
                lines.append(line)
        return "\n".join(lines)


@dataclass(frozen=True)
class SweepRunStats:
    """What one :meth:`ScenarioSweepRunner.run` invocation actually did.

    ``n_day_tasks`` counts the :class:`~repro.simulation.runner.DayTask`
    items compiled for collection — the resume-identity contract is that a
    fully warm store yields ``n_day_tasks == 0`` and a half-warm store only
    the missing simulations' days.

    ``n_unclaimed`` is only non-zero in cooperative runs (``run`` with a
    ``claim_filter``): scenarios that were neither cached nor granted to
    this runner, i.e. left for other workers.  A run is *complete* —
    its report covers the whole grid — iff ``n_unclaimed == 0``.

    ``n_discarded`` counts analysed results thrown away by a
    ``put_filter`` veto (a lost lease): never persisted, never reported,
    re-counted under ``n_unclaimed`` so completeness stays honest.
    """

    n_scenarios: int
    n_cached: int
    n_analyzed: int
    n_simulations: int
    n_day_tasks: int
    n_unclaimed: int = 0
    n_discarded: int = 0

    @property
    def complete(self) -> bool:
        return self.n_unclaimed == 0


class ScenarioSweepRunner:
    """Executes a :class:`ScenarioGrid` end to end.

    Parameters
    ----------
    grid:
        The scenario grid (or an explicit list of :class:`ScenarioSpec`).
    seed:
        Root seed of the whole sweep; scenario ``i`` derives the child
        ``(SCENARIO_DOMAIN, i)``.
    mode / max_workers:
        Forwarded to the underlying :class:`CampaignRunner` pool; all days
        of all scenarios share it.
    analysis_seed:
        Seed of the per-scenario analysis (CV shuffles), shared across
        scenarios so analysis randomness never confounds scenario effects.
    re_sensor_counts:
        Sensor counts at which RE accuracy is cross-validated per scenario;
        default: each scenario's maximum count.  Pass ``()`` to skip the RE
        stage (MD-only sweeps are much cheaper).
    keep_recordings:
        Whether :class:`ScenarioResult` retains each scenario's raw
        :class:`CampaignRecording` (default).  Disable for large grids: the
        report only needs the aggregated numbers, while the recordings pin
        every scenario's per-sample RSSI arrays in memory.  Note that
        recordings are never *persisted*: results loaded from a
        :class:`~repro.analysis.sweep_store.SweepStore` always have
        ``recording=None``, whatever this flag says (see :meth:`run`).
    zone_estimator:
        Optional :class:`~repro.zones.estimator.ZoneOccupancyEstimator`:
        every freshly analysed scenario additionally runs the
        zone-occupancy workload over its recording, scored against the
        re-derived ground-truth walks
        (:meth:`~repro.simulation.collector.CampaignCollector.day_walks`),
        and carries the counts as :attr:`ScenarioResult.zone_accuracy`.
        The estimator's content hash joins :meth:`store_key`, so adding,
        removing or retuning it invalidates stored records instead of
        silently reusing them.
    """

    def __init__(
        self,
        grid: Union[ScenarioGrid, Sequence[ScenarioSpec]],
        *,
        seed: Union[int, np.random.SeedSequence, None] = 0,
        mode: str = "process",
        max_workers: Optional[int] = None,
        analysis_seed: int = 0,
        re_sensor_counts: Optional[Sequence[int]] = None,
        keep_recordings: bool = True,
        zone_estimator: Optional[ZoneOccupancyEstimator] = None,
    ) -> None:
        if isinstance(grid, ScenarioGrid):
            self._grid: Optional[ScenarioGrid] = grid
            self._specs = grid.scenarios()
        else:
            self._grid = None
            self._specs = list(grid)
        if not self._specs:
            raise ValueError("the scenario grid is empty")
        if isinstance(seed, np.random.SeedSequence):
            self._root = seed
        else:
            self._root = np.random.SeedSequence(seed)
        self._mode = mode
        self._max_workers = max_workers
        self._analysis_seed = analysis_seed
        self._re_sensor_counts = (
            tuple(int(n) for n in re_sensor_counts)
            if re_sensor_counts is not None
            else None
        )
        self._keep_recordings = keep_recordings
        self._zone_estimator = zone_estimator
        self.last_run_stats: Optional[SweepRunStats] = None
        self._last_collect_task_count = 0
        # Explicit spec lists bypass ScenarioGrid's validation, so enforce
        # name uniqueness here: SweepReport.result_for and every name-keyed
        # sweep-store record would otherwise silently return the first
        # match among same-named scenarios.
        name_counts = Counter(spec.name for spec in self._specs)
        duplicate_names = sorted(n for n, c in name_counts.items() if c > 1)
        if duplicate_names:
            raise ValueError(
                f"duplicate scenario names {duplicate_names}; "
                "SweepReport.result_for and sweep-store records are keyed "
                "by name and would silently return the first match — give "
                "every scenario a unique name"
            )
        # Scenarios differing only in FADEWICH config simulate the same
        # campaign; enumerate the distinct simulations in spec order so
        # their seed derivation is reproducible from the root alone.  The
        # key is name-based, so distinct simulation inputs must never
        # alias one simulation key — that would silently analyse the
        # wrong data.
        self._sim_indices: Dict[Tuple[str, str, str, int], int] = {}
        sim_inputs: Dict[Tuple[str, str, str, int], Tuple] = {}
        for spec in self._specs:
            key = spec.simulation_key()
            inputs = (spec.layout, spec.scale, spec.channel_config)
            if key not in self._sim_indices:
                self._sim_indices[key] = len(self._sim_indices)
                sim_inputs[key] = inputs
            elif sim_inputs[key] != inputs:
                raise ValueError(
                    f"scenarios with simulation key {key} have conflicting "
                    "layout/scale/channel definitions; give distinct names "
                    "to distinct simulation inputs"
                )

    # ------------------------------------------------------------------ #
    @property
    def specs(self) -> List[ScenarioSpec]:
        return list(self._specs)

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        return self._root

    def scenario_seed(self, spec: ScenarioSpec) -> np.random.SeedSequence:
        """The derived seed root of a scenario's simulated campaign.

        Keyed by the scenario's *simulation* identity: config-only variants
        of the same campaign share the seed (and hence the recording).
        """
        return derive_seed_sequence(
            self._root, SCENARIO_DOMAIN, self._sim_indices[spec.simulation_key()]
        )

    def _sensor_counts_for(self, spec: ScenarioSpec) -> List[int]:
        if self._grid is not None:
            return self._grid.sensor_counts_for(spec.layout)
        n_max = len(spec.layout.sensors)
        return list(range(min(3, n_max), n_max + 1))

    # ------------------------------------------------------------------ #
    def collect(
        self,
        needed: Optional[Collection[Tuple[str, str, str, int]]] = None,
    ) -> List[Tuple[ScenarioSpec, CampaignRecording]]:
        """Collect scenario campaigns on one shared worker pool.

        Schedule generation runs serially per scenario (it is cheap and
        stateful on the scenario's structural stream); day collection fans
        out across scenarios through
        :meth:`CampaignRunner.run_tasks`.  Each scenario's recording is
        bit-identical to a serial ``collect_generated`` with the same
        derived seed.

        Parameters
        ----------
        needed:
            Simulation keys (:meth:`ScenarioSpec.simulation_key`) to
            collect; everything when omitted.  This is the partial
            collection a store resume drives: only the missing simulations
            are compiled into day tasks, while seed derivation stays keyed
            by the *full* grid's ``_sim_indices`` — so a 90%-warm grid
            reruns 10% of the day-collection work and still reproduces
            every recording bit-identically to a cold run.  Returned pairs
            cover exactly the specs whose simulation key was collected.
        """
        needed_keys = None if needed is None else set(needed)
        tasks: List[DayTask] = []
        spans: Dict[Tuple[str, str, str, int], Tuple[int, int]] = {}
        sim_specs: Dict[Tuple[str, str, str, int], ScenarioSpec] = {}
        for spec in self._specs:
            key = spec.simulation_key()
            if key in spans:
                continue  # config-only variant: shares the recording
            if needed_keys is not None and key not in needed_keys:
                continue
            sim_specs[key] = spec
            scenario_seed = self.scenario_seed(spec)
            collector = CampaignCollector(
                spec.layout,
                channel_config=spec.channel_config,
                seed=scenario_seed,
            )
            schedule = collector.make_schedule(
                spec.scale.n_days,
                spec.scale.day_duration_s,
                spec.scale.profiles_for(spec.layout),
            )
            base = collector.next_generated_base()
            start = len(tasks)
            tasks.extend(
                DayTask(
                    day=day,
                    seed_seq=scenario_seed,
                    seed_base=base,
                    layout=spec.layout,
                    channel_config=spec.channel_config,
                )
                for day in schedule.days
            )
            spans[key] = (start, len(tasks))
        self._last_collect_task_count = len(tasks)
        if not tasks:
            return []
        runner = CampaignRunner(
            self._specs[0].layout,
            seed=self._root,
            mode=self._mode,
            max_workers=self._max_workers,
        )
        days = runner.run_tasks(tasks)
        recordings = {
            key: CampaignRecording(
                days=days[a:b], layout=sim_specs[key].layout
            )
            for key, (a, b) in spans.items()
        }
        return [
            (spec, recordings[spec.simulation_key()])
            for spec in self._specs
            if spec.simulation_key() in recordings
        ]

    def analyze(
        self,
        spec: ScenarioSpec,
        recording: CampaignRecording,
        features: Optional[CampaignStdFeatures] = None,
    ) -> ScenarioResult:
        """Run the batch MD / RE analysis of one scenario recording.

        ``features`` optionally shares a pre-built rolling feature matrix
        across calls — :meth:`run` passes one per ``(recording, config)``
        so the detector axis amortises the feature computation (the
        columnar std matrices dominate a sweep's analysis cost; detectors
        only differ downstream of them).
        """
        context = AnalysisContext(
            recording,
            spec.config,
            seed=self._analysis_seed,
            detector=spec.detector,
            features=features,
        )
        counts = self._sensor_counts_for(spec)
        evaluations = context.md_evaluations(counts)
        md_rows = [
            MDTableRow(n_sensors=n, counts=evaluations[n].counts) for n in counts
        ]
        if self._re_sensor_counts is None:
            re_counts: Sequence[int] = [max(counts)] if counts else []
        else:
            re_counts = [n for n in self._re_sensor_counts if n in set(counts)]
        re_accuracies = {n: context.re_accuracy(n) for n in re_counts}
        zone_accuracy = None
        if self._zone_estimator is not None:
            zone_accuracy = self._zone_accuracy(
                spec, recording, features=features
            )
        return ScenarioResult(
            spec=spec,
            n_events=recording.total_labelled_events(),
            n_departures=recording.total_departures(),
            md_rows=md_rows,
            re_accuracies=re_accuracies,
            zone_accuracy=zone_accuracy,
            recording=recording if self._keep_recordings else None,
        )

    def _zone_accuracy(
        self,
        spec: ScenarioSpec,
        recording: CampaignRecording,
        features: Optional[CampaignStdFeatures] = None,
    ) -> Dict[str, float]:
        """Score the zone workload on one recording against ground truth.

        Rebuilds the scenario's collector and schedule from its derived
        seed — the exact deterministic plan the recording was collected
        under — so :meth:`~repro.simulation.collector.CampaignCollector.
        day_walks` yields the true trajectories without re-simulating any
        radio.  When ``features`` is given, its
        :class:`~repro.features.store.FeatureStore` is shared, so the
        attenuation matrices are cached next to the detection features.
        """
        estimator = self._zone_estimator
        assert estimator is not None
        scenario_seed = self.scenario_seed(spec)
        collector = CampaignCollector(
            spec.layout,
            channel_config=spec.channel_config,
            seed=scenario_seed,
        )
        schedule = collector.make_schedule(
            spec.scale.n_days,
            spec.scale.day_duration_s,
            spec.scale.profiles_for(spec.layout),
        )
        base = collector.next_generated_base()
        store = features.store if features is not None else None
        total = ZoneAccuracy()
        for day, day_schedule in zip(recording.days, schedule.days):
            times, grid = estimator.day_grid(day, spec.layout, store=store)
            walks = collector.day_walks(day_schedule, seed_base=base)
            trajectories = [
                traj
                for walk_list in walks.values()
                for (_, traj, _) in walk_list
            ]
            total = total + score_walks(
                estimator.zone_map, times, grid.occupied, trajectories
            )
        return total.to_dict()

    def store_key(self, spec: ScenarioSpec) -> Dict[str, object]:
        """The staleness fingerprint of one scenario's store record.

        A stored result is only reusable if *everything* that determined it
        is unchanged: the sweep's root seed identity (entropy + spawn key),
        the scenario's position in the simulation-seed enumeration
        (``sim_index`` — grid reshapes that reassign seeds invalidate
        records even when names survive), the analysis seed, the evaluated
        sensor counts, the RE stage selection, the detector label and the
        content hash of the layout / scale / channel / FADEWICH / detector
        configuration.  Any mismatch reads as a store miss, never as
        silent reuse — in particular, a grid re-run with a different
        detector (or a retuned one under the same label) recomputes
        instead of resuming, while each detector's own records stay warm.

        The library version is part of the key too: this repo consciously
        re-pins analysis semantics across releases, so a record computed by
        an older ``repro`` must be recomputed, not resumed.  (Conservative
        by design — a version bump invalidates stores even when the
        analysis maths is untouched; recomputing is cheap next to silently
        mixing semantics in one report.)
        """
        return {
            "version": _library_version(),
            "root_entropy": _entropy_json(self._root),
            "root_spawn_key": list(self._root.spawn_key),
            "sim_index": self._sim_indices[spec.simulation_key()],
            "analysis_seed": self._analysis_seed,
            "detector": spec.detector_name,
            "sensor_counts": self._sensor_counts_for(spec),
            "re_sensor_counts": (
                list(self._re_sensor_counts)
                if self._re_sensor_counts is not None
                else None
            ),
            "content_hash": spec.content_hash(),
            # Feature-pipeline identity: the fingerprint of the extractor
            # the analysis features resolve to, plus the zone workload (or
            # its absence).  A retuned extractor or estimator can never
            # silently reuse records computed under the old definition.
            "features": extractor_fingerprint(
                RollingStdExtractor(std_window_s=spec.config.md.std_window_s)
            ),
            "zones": (
                None
                if self._zone_estimator is None
                else content_hash(self._zone_estimator)
            ),
        }

    def _load_stored(
        self, store: SweepStore, spec: ScenarioSpec, key: Dict[str, object]
    ) -> Optional[ScenarioResult]:
        """One scenario's store record as a result, or ``None``."""
        payload = store.get(spec.name, key)
        if payload is None:
            return None
        try:
            result = ScenarioResult.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            # A matching key on a mangled payload (hand-edited record,
            # foreign writer): honour the corrupted-files-read-as-misses
            # contract and recompute the scenario.  Reclassify the lookup
            # the store already counted as a hit, so hits + misses + stale
            # keeps partitioning lookups and "hits" only counts reused
            # records.
            store.stats.reclassify_hit_as_stale()
            return None
        # The runner's own spec is authoritative (the record matched its
        # content hash and seed identity; the stored copy may carry a
        # stale enumeration index).
        return replace(result, spec=spec)

    def run(
        self,
        store: Optional[SweepStore] = None,
        *,
        claim_filter: Optional[Callable[[Tuple[str, str, str, int]], bool]] = None,
        put_filter: Optional[Callable[[Tuple[str, str, str, int]], bool]] = None,
        on_put: Optional[Callable[[Tuple[str, str, str, int]], None]] = None,
        on_superseded: Optional[Callable[[Tuple[str, str, str, int]], None]] = None,
    ) -> SweepReport:
        """Collect and analyse the grid, returning the report.

        With a :class:`~repro.analysis.sweep_store.SweepStore`, grid points
        whose record matches their :meth:`store_key` are loaded instead of
        recomputed, only the missing simulations are collected (see
        :meth:`collect`), and every freshly analysed scenario is persisted
        atomically — so an interrupted sweep resumes where it stopped and a
        completed sweep re-runs without any day-collection work, returning
        a report bit-identical (``to_dict()``) to the cold run.
        :attr:`last_run_stats` records what actually happened.

        Raw recordings are never persisted, so store-loaded results carry
        ``recording=None`` even under ``keep_recordings=True``: after a
        resume, ``ScenarioResult.recording`` is only populated for the
        scenarios that were actually (re-)simulated.  Code needing raw
        traces for every scenario should re-run without a store.

        Cooperative mode
        ----------------
        ``claim_filter`` (requires ``store``) turns one run into a single
        *pass* of a multi-worker fill: the filter is asked once per missing
        simulation key, in the deterministic ``_sim_indices`` enumeration
        order, and only the keys it grants are collected — the sweep-queue
        layer (:class:`~repro.analysis.sweep_queue.SweepWorker`) answers by
        taking lease files, so concurrent workers partition the grid.
        Because seed derivation stays keyed by the *full* grid, any
        partition of simulation keys across workers re-collects every
        recording bit-identically to a solo run.

        Just before collecting, each granted simulation's scenarios are
        re-checked against the store: completed records supersede claims
        (another worker may have finished a key between the initial load
        pass and the grant), so a crash-then-reclaim can never analyse a
        scenario twice into diverging records.  ``on_superseded``
        (requires ``claim_filter``) is called with each granted key whose
        every scenario was superseded this way — the claim did no work,
        and the sweep-queue layer answers by releasing the lease and
        reclassifying the win, keeping "claims won" an exact partition of
        the keys actually collected.  The returned report covers
        only the cached + granted scenarios — check
        ``last_run_stats.n_unclaimed`` (0 means the grid is complete) or
        ``last_run_stats.complete`` before treating it as the full grid.

        ``put_filter`` / ``on_put`` (both require ``store``) bracket each
        persistence of a freshly analysed scenario.  ``put_filter`` is
        asked with the scenario's simulation key immediately before its
        ``store.put``; answering ``False`` *discards* the result — it is
        neither persisted nor reported, and counts as unclaimed — which
        is how :class:`~repro.analysis.sweep_queue.SweepWorker` drops
        results whose lease was stolen mid-collect rather than racing the
        thief's own put.  ``on_put`` runs right after each successful
        ``store.put`` (a crash-after-put fault-injection seam).
        """
        if claim_filter is not None and store is None:
            raise ValueError("claim_filter requires a store")
        if (put_filter is not None or on_put is not None) and store is None:
            raise ValueError("put_filter/on_put require a store")
        if on_superseded is not None and claim_filter is None:
            raise ValueError("on_superseded requires a claim_filter")
        results: Dict[str, ScenarioResult] = {}
        store_keys: Dict[str, Dict[str, object]] = {}
        if store is not None:
            for spec in self._specs:
                key = store_keys[spec.name] = self.store_key(spec)
                result = self._load_stored(store, spec, key)
                if result is not None:
                    results[spec.name] = result
        n_cached = len(results)
        missing = [spec for spec in self._specs if spec.name not in results]
        missing_keys = {spec.simulation_key() for spec in missing}
        if claim_filter is None:
            collect_keys = missing_keys
        else:
            # Ask in deterministic enumeration order so every worker walks
            # the same sequence and lease contention stays predictable.
            granted = {
                key
                for key in self._sim_indices
                if key in missing_keys and claim_filter(key)
            }
            # Completed records supersede claims: re-check granted
            # scenarios before doing any simulation work.
            for spec in missing:
                if spec.simulation_key() not in granted:
                    continue
                result = self._load_stored(store, spec, store_keys[spec.name])
                if result is not None:
                    results[spec.name] = result
            missing = [s for s in self._specs if s.name not in results]
            collect_keys = granted & {s.simulation_key() for s in missing}
            if on_superseded is not None:
                for key in granted - collect_keys:
                    on_superseded(key)
        self._last_collect_task_count = 0
        pairs = self.collect(needed=collect_keys) if collect_keys else []
        n_analyzed = 0
        n_discarded = 0
        # Detector/config variants of one simulation share the recording;
        # share the rolling feature matrices too (keyed per recording and
        # FADEWICH config — detectors consume the same std sums), so the
        # detector axis only pays for the decision engines.
        features_cache: Dict[Tuple[int, FadewichConfig], CampaignStdFeatures] = {}
        for spec, recording in pairs:
            if spec.name in results:
                continue  # cached config-variant sharing a missing simulation
            features_key = (id(recording), spec.config)
            features = features_cache.get(features_key)
            if features is None:
                features = CampaignStdFeatures(recording, spec.config)
                features_cache[features_key] = features
            result = self.analyze(spec, recording, features=features)
            n_analyzed += 1
            if store is not None:
                sim_key = spec.simulation_key()
                if put_filter is not None and not put_filter(sim_key):
                    # Lost the claim mid-collect: the thief will produce
                    # this record; persisting ours would race its put.
                    n_discarded += 1
                    continue
                store.put(spec.name, store_keys[spec.name], result.to_dict())
                if on_put is not None:
                    on_put(sim_key)
            results[spec.name] = result
        self.last_run_stats = SweepRunStats(
            n_scenarios=len(self._specs),
            n_cached=len(results) - (n_analyzed - n_discarded),
            n_analyzed=n_analyzed,
            n_simulations=len(collect_keys),
            n_day_tasks=self._last_collect_task_count,
            n_unclaimed=len(self._specs) - len(results),
            n_discarded=n_discarded,
        )
        return SweepReport(
            results=[
                results[spec.name]
                for spec in self._specs
                if spec.name in results
            ],
            seed_entropy=_entropy_json(self._root),
        )

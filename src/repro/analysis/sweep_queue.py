"""Distributed sweep execution: N workers cooperatively fill one store.

PR 5 made every grid point an atomic, fingerprinted
:class:`~repro.analysis.sweep_store.SweepStore` record; this module adds
the thin work-queue front-end the ROADMAP's distributed-execution item
calls for, so N processes — or N hosts sharing the store directory over a
network filesystem — each claim missing *simulation keys* and fill the
same store without coordination beyond the filesystem itself.

The claim protocol
------------------

A **lease file** (``<slug>.lease`` next to the record files) marks one
simulation key as being worked on.  The lifecycle keeps the store's
crash-anywhere guarantees:

* **Claiming is atomic.**  The full lease payload (owner id, PID,
  heartbeat timestamp, TTL) is serialised to a temporary file in the
  store directory and *hard-linked* into place — link creation fails if
  the lease already exists, so exactly one of any number of contending
  workers wins a key; the losers move on to the next one.  (Creation
  needs no-clobber semantics, which is why it uses ``os.link`` rather
  than the ``os.replace`` rename of record writes and heartbeat renewals
  — ``os.replace`` would silently steal a live competitor's claim.)
* **Leases expire.**  A worker renews its heartbeat (temp file +
  ``os.replace``, owner-only) every ``ttl / 4`` seconds from a background
  thread; a lease whose heartbeat is older than its TTL is *reclaimable*:
  any worker may break it (unlink) and race for a fresh claim — again,
  exactly one wins.  A SIGKILL'd worker therefore blocks its keys for at
  most one TTL.
* **Completed records supersede claims.**  After winning a lease the
  runner re-checks the store before simulating
  (:meth:`~repro.analysis.scenarios.ScenarioSweepRunner.run` cooperative
  mode), and every finished scenario is ``put`` *before* the lease is
  released — so a crash at any point either leaves the records (work
  survives) or leaves an expiring lease (work is redone).  Nothing is
  ever lost, and redone work is harmless: seed derivation is keyed by the
  full grid, so any worker recomputes bit-identical records.

Bit-identity contract
---------------------

A cooperative fill partitions *which worker collects which simulation*,
never *what is collected*: scenario seeds derive from the full grid's
``_sim_indices`` enumeration, so the union of any workers' records —
including records redone after crashes — reproduces a solo
``run(store=...)`` report ``to_dict()``-identically.  The tier-1 queue
tests and the ``benchmarks/test_sweep_distributed.py`` gate both assert
this equality.

Prioritized batches
-------------------

:func:`run_prioritized` executes a list of *named* grids in priority
order — the batch-orchestration shape of running one resumable campaign
after another — giving each grid its own store subdirectory and log file,
fanning each out over ``workers`` processes, and merging everything into
one ``SWEEP_report.json``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..reliability.faults import (
    LEASE_CLOCK_SKEW,
    LEASE_HEARTBEAT_STALL,
    LEASE_UNLINK_RACE,
    WORKER_CRASH_AFTER_PUT,
    WORKER_CRASH_BEFORE_PUT,
    as_injector,
)
from .scenarios import ScenarioGrid, ScenarioSweepRunner, SweepReport
from .sweep_store import SweepStore, name_slug

__all__ = [
    "LeaseInfo",
    "LeaseManager",
    "SweepWorker",
    "SweepWorkerStats",
    "GridJob",
    "PrioritizedRunResult",
    "run_prioritized",
]

#: Version stamp of the lease-file layout.
LEASE_FORMAT = 1

#: Default lease time-to-live.  Generous next to the ttl/4 heartbeat
#: cadence, tight next to typical per-simulation wall times: a killed
#: worker's keys are reclaimable within half a minute.
DEFAULT_LEASE_TTL_S = 30.0


@dataclass(frozen=True)
class LeaseInfo:
    """The decoded content of one lease file."""

    name: str
    owner: str
    pid: int
    heartbeat: float
    ttl_s: float

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the heartbeat is older than the lease's own TTL."""
        now = time.time() if now is None else now
        return (now - self.heartbeat) > self.ttl_s


class LeaseManager:
    """Atomic, expiring claims over names in one store directory.

    Parameters
    ----------
    store:
        The :class:`SweepStore` (or its directory) whose names are being
        claimed.  Leases live next to the record files so one shared
        directory is the whole coordination surface.
    owner:
        Unique identity written into every lease this manager takes;
        defaults to ``host-pid-uuid`` so two workers can never
        accidentally share one.
    ttl_s:
        Heartbeats older than this make a lease reclaimable by anyone.
        Workers on different hosts compare wall clocks here, so keep the
        TTL comfortably above plausible clock skew.
    faults:
        Optional :class:`~repro.reliability.FaultPlan` /
        :class:`~repro.reliability.FaultInjector` enabling the lease
        hazards: ``lease.clock_skew`` (a constant offset on this
        manager's wall clock, both when stamping heartbeats and when
        judging expiry — the cross-host drift hazard),
        ``lease.heartbeat_stall`` (the background renewal thread skips a
        firing tick, so held leases silently age toward theft) and
        ``lease.unlink_race`` (a competitor's fresh lease materialises
        between our expired-lease unlink and re-link — the break race
        lost).
    """

    def __init__(
        self,
        store: Union[SweepStore, str, Path],
        *,
        owner: Optional[str] = None,
        ttl_s: float = DEFAULT_LEASE_TTL_S,
        faults: Optional[object] = None,
    ) -> None:
        self._store = store if isinstance(store, SweepStore) else SweepStore(store)
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.owner = owner or (
            f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        self.ttl_s = float(ttl_s)
        self._faults = as_injector(faults)
        self._lock = threading.Lock()
        self._held: Dict[str, Path] = {}

    # ------------------------------------------------------------------ #
    @property
    def store(self) -> SweepStore:
        return self._store

    def held(self) -> List[str]:
        """Names currently held by this manager, sorted."""
        with self._lock:
            return sorted(self._held)

    def read(self, name: str) -> Optional[LeaseInfo]:
        """The current lease on a name, or ``None``.

        Unreadable lease files (foreign junk, unsupported format) decode
        to a synthetic lease whose heartbeat is the file's mtime and whose
        owner is unknown: recent ones read as live (never break what a
        competitor may have just written), old ones as expired.
        """
        path = self._store.lease_path(name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            data = None
        if (
            isinstance(data, dict)
            and data.get("format") == LEASE_FORMAT
            and isinstance(data.get("owner"), str)
        ):
            try:
                return LeaseInfo(
                    name=str(data.get("name", name)),
                    owner=data["owner"],
                    pid=int(data.get("pid", -1)),
                    heartbeat=float(data["heartbeat"]),
                    ttl_s=float(data.get("ttl_s", self.ttl_s)),
                )
            except (KeyError, TypeError, ValueError):
                pass
        try:
            mtime = os.path.getmtime(path)
        except OSError:
            return None
        return LeaseInfo(
            name=name, owner="<unreadable>", pid=-1, heartbeat=mtime,
            ttl_s=self.ttl_s,
        )

    def owns(self, name: str) -> bool:
        """Disk truth: is the lease on ``name`` currently ours?

        Unlike :meth:`held` (this manager's belief), this re-reads the
        lease file — the check a worker makes before persisting a result,
        so work finished after a competitor stole the expired lease is
        discarded instead of racing the thief's own put.
        """
        current = self.read(name)
        return current is not None and current.owner == self.owner

    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        """This manager's wall clock, plus any injected constant skew."""
        now = time.time()
        if self._faults is not None:
            spec = self._faults.constant(LEASE_CLOCK_SKEW)
            if spec is not None:
                now += float(spec.payload)
        return now

    def _payload(self, name: str) -> Dict[str, object]:
        return {
            "format": LEASE_FORMAT,
            "name": name,
            "owner": self.owner,
            "pid": os.getpid(),
            "heartbeat": self._now(),
            "ttl_s": self.ttl_s,
        }

    def _write_temp(self, name: str) -> str:
        fd, tmp_name = tempfile.mkstemp(
            prefix="lease.", suffix=".tmp", dir=self._store.path
        )
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(self._payload(name), handle, sort_keys=True)
            handle.write("\n")
        return tmp_name

    def try_acquire(self, name: str) -> bool:
        """Attempt to claim a name; ``True`` iff this manager now holds it.

        Exactly one of any number of contenders succeeds: creation is an
        atomic ``os.link`` (fails on an existing lease), and breaking an
        expired lease is unlink-then-race — the unlink may remove a lease
        another breaker already removed, but the decisive re-link is
        first-wins again.
        """
        path = self._store.lease_path(name)
        with self._lock:
            if name in self._held:
                return True
        tmp_name = self._write_temp(name)
        try:
            won = self._link(tmp_name, path)
            if not won:
                existing = self.read(name)
                if existing is not None and not existing.expired(self._now()):
                    return False
                # Expired (or vanished since the failed link): break it
                # and race for the fresh claim.
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
                except OSError:
                    return False
                if (
                    self._faults is not None
                    and self._faults.fired(LEASE_UNLINK_RACE) is not None
                ):
                    # A competing breaker wins the post-unlink race: its
                    # fresh lease lands before our re-link attempt.
                    self._plant_competitor(name, path)
                won = self._link(tmp_name, path)
            if won:
                with self._lock:
                    self._held[name] = path
            return won
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    def _plant_competitor(self, name: str, path: Path) -> None:
        """Materialise a live competitor's lease (fault-injection only)."""
        fd, tmp_name = tempfile.mkstemp(
            prefix="lease.", suffix=".tmp", dir=self._store.path
        )
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            payload = dict(
                self._payload(name),
                owner="<injected-competitor>",
                heartbeat=time.time(),
            )
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
        try:
            self._link(tmp_name, path)
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    @staticmethod
    def _link(tmp_name: str, path: Path) -> bool:
        try:
            os.link(tmp_name, path)
            return True
        except FileExistsError:
            return False

    def renew(self, name: str) -> bool:
        """Refresh the heartbeat of a held lease (temp file + ``os.replace``).

        Returns ``False`` — and forgets the lease — if it is no longer
        ours on disk: it expired and a competitor reclaimed it.  The
        caller's work is then potentially duplicated elsewhere, which the
        bit-identity contract makes harmless.
        """
        with self._lock:
            path = self._held.get(name)
        if path is None:
            return False
        current = self.read(name)
        if current is None or current.owner != self.owner:
            with self._lock:
                self._held.pop(name, None)
            return False
        tmp_name = self._write_temp(name)
        try:
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return False
        return True

    def renew_all(self) -> None:
        for name in self.held():
            self.renew(name)

    def release(self, name: str) -> None:
        """Drop a held lease (no-op for names we do not hold on disk)."""
        with self._lock:
            path = self._held.pop(name, None)
        if path is None:
            return
        current = self.read(name)
        if current is not None and current.owner == self.owner:
            try:
                os.unlink(path)
            except OSError:
                pass

    def release_all(self) -> None:
        for name in self.held():
            self.release(name)


class _Heartbeat(threading.Thread):
    """Background renewal of every held lease, every ``ttl / 4`` seconds."""

    def __init__(self, leases: LeaseManager) -> None:
        super().__init__(name="sweep-lease-heartbeat", daemon=True)
        self._leases = leases
        # NB: Thread itself defines a private _stop() method; shadowing it
        # with an Event breaks join().
        self._stopped = threading.Event()

    def run(self) -> None:
        interval = self._leases.ttl_s / 4.0
        injector = self._leases._faults
        while not self._stopped.wait(interval):
            if (
                injector is not None
                and injector.fired(LEASE_HEARTBEAT_STALL) is not None
            ):
                # A stalled tick: held leases silently age toward theft.
                continue
            self._leases.renew_all()

    def stop(self) -> None:
        self._stopped.set()
        self.join()


def sim_lease_name(sim_key: Tuple[str, str, str, int]) -> str:
    """The lease name of one simulation key.

    Claims are per *simulation* (layout, scale, channel, replicate), not
    per scenario: config-only variants share a recording, so the worker
    that wins a key analyses every config variant riding on it.
    """
    layout, scale, channel, replicate = sim_key
    return f"{layout}/{scale}/{channel}/r{replicate}"


@dataclass
class SweepWorkerStats:
    """What one :meth:`SweepWorker.run` invocation did across its passes."""

    passes: int = 0
    claims_won: int = 0
    claims_lost: int = 0
    scenarios_analyzed: int = 0
    idle_waits: int = 0
    #: Analysed results thrown away because the key's lease was stolen
    #: mid-collect (heartbeat theft): never persisted, redone elsewhere.
    puts_discarded: int = 0
    #: Claims released without work because a competitor's completed
    #: records landed between the store load and the lease acquisition;
    #: not counted in ``claims_won``, so wins exactly partition the keys
    #: this fleet actually collected.
    claims_superseded: int = 0


class SweepWorker:
    """One cooperative participant in a multi-worker store fill.

    Repeatedly runs the runner in cooperative mode — claim up to
    ``claim_chunk`` missing simulation keys by lease, collect them through
    the bit-identical partial-recollection path, ``put`` every analysed
    scenario, release the leases — until the store covers the whole grid,
    then returns the full :class:`SweepReport` (``to_dict()``-identical to
    a solo run's).

    Parameters
    ----------
    runner:
        The grid's :class:`ScenarioSweepRunner`.  Workers of one fleet
        must be constructed over the same grid and seeds; inside a
        multi-process fleet the runner's ``mode`` should stay ``"serial"``
        (the processes *are* the parallelism).
    store:
        The shared :class:`SweepStore` (or its directory).
    owner / lease_ttl_s:
        Forwarded to this worker's :class:`LeaseManager`.
    claim_chunk:
        Simulation keys claimed per pass.  1 (the default) interleaves
        workers at the finest grain; larger chunks trade claim overhead
        against cross-scenario batching inside one collect call.
    poll_interval_s:
        Sleep between passes that made no progress (all remaining keys
        leased by live competitors).
    timeout_s:
        Give up (``TimeoutError``) if the grid is still incomplete after
        this long — e.g. a competitor that holds a lease, renews it
        forever and never finishes.  ``None`` waits indefinitely.
    faults:
        Optional :class:`~repro.reliability.FaultPlan` /
        :class:`~repro.reliability.FaultInjector` shared across this
        worker's whole stack: forwarded to its :class:`LeaseManager`
        (clock skew, heartbeat stalls, unlink races), installed on the
        store if the store has no injector of its own (read/write/fsync
        errors, record corruption), and consulted at the two worker crash
        points — ``worker.crash_before_put`` (result analysed, nothing
        persisted) and ``worker.crash_after_put`` (record persisted,
        lease never released).
    """

    def __init__(
        self,
        runner: ScenarioSweepRunner,
        store: Union[SweepStore, str, Path],
        *,
        owner: Optional[str] = None,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        claim_chunk: int = 1,
        poll_interval_s: float = 0.2,
        timeout_s: Optional[float] = None,
        log: Optional[Callable[[str], None]] = None,
        faults: Optional[object] = None,
    ) -> None:
        if claim_chunk < 1:
            raise ValueError("claim_chunk must be >= 1")
        self._runner = runner
        self._store = store if isinstance(store, SweepStore) else SweepStore(store)
        self._faults = as_injector(faults)
        if self._faults is not None and self._store.faults is None:
            self._store.faults = self._faults
        self._leases = LeaseManager(
            self._store, owner=owner, ttl_s=lease_ttl_s, faults=self._faults
        )
        self._claim_chunk = int(claim_chunk)
        self._poll_interval_s = float(poll_interval_s)
        self._timeout_s = timeout_s
        self._log = log
        self.last_worker_stats: Optional[SweepWorkerStats] = None

    @property
    def owner(self) -> str:
        return self._leases.owner

    @property
    def store(self) -> SweepStore:
        return self._store

    def _say(self, message: str) -> None:
        if self._log is not None:
            self._log(f"[{self.owner}] {message}")

    def run(self) -> SweepReport:
        """Work until the grid is complete; return the full report.

        When invoked from the main thread, a SIGTERM handler is installed
        for the duration of the run that raises ``SystemExit(143)`` — so
        a terminated worker unwinds through the ``finally`` below,
        releasing every held lease instead of leaving them to expire.
        """
        stats = SweepWorkerStats()
        self.last_worker_stats = stats
        deadline = (
            time.monotonic() + self._timeout_s
            if self._timeout_s is not None
            else None
        )
        previous_sigterm: Optional[object] = None
        sigterm_installed = False
        if threading.current_thread() is threading.main_thread():

            def _on_sigterm(signum: int, frame: object) -> None:
                raise SystemExit(143)

            previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
            sigterm_installed = True
        heartbeat = _Heartbeat(self._leases)
        heartbeat.start()
        try:
            while True:
                claimed: List[str] = []

                def claim(sim_key: Tuple[str, str, str, int]) -> bool:
                    if len(claimed) >= self._claim_chunk:
                        return False
                    lease = sim_lease_name(sim_key)
                    if self._leases.try_acquire(lease):
                        claimed.append(lease)
                        stats.claims_won += 1
                        return True
                    stats.claims_lost += 1
                    return False

                def put_gate(sim_key: Tuple[str, str, str, int]) -> bool:
                    if self._faults is not None:
                        spec = self._faults.fired(WORKER_CRASH_BEFORE_PUT)
                        if spec is not None:
                            self._faults.apply(spec)
                    lease = sim_lease_name(sim_key)
                    if lease in claimed and not self._leases.owns(lease):
                        # The lease expired and a competitor stole it:
                        # discard our result — the thief's put (of the
                        # bit-identical record) is authoritative, and a
                        # racing double-put could interleave with it.
                        stats.puts_discarded += 1
                        self._say(
                            f"lease {lease!r} stolen mid-collect; "
                            f"discarding result"
                        )
                        return False
                    return True

                def after_put(sim_key: Tuple[str, str, str, int]) -> None:
                    if self._faults is not None:
                        spec = self._faults.fired(WORKER_CRASH_AFTER_PUT)
                        if spec is not None:
                            self._faults.apply(spec)

                def superseded(sim_key: Tuple[str, str, str, int]) -> None:
                    # A competitor finished this key between our store
                    # load and our acquisition: the claim did no work.
                    # Release it right away and reclassify the win.
                    lease = sim_lease_name(sim_key)
                    if lease in claimed:
                        self._leases.release(lease)
                        claimed.remove(lease)
                        stats.claims_won -= 1
                        stats.claims_superseded += 1

                try:
                    report = self._runner.run(
                        store=self._store,
                        claim_filter=claim,
                        put_filter=put_gate,
                        on_put=after_put,
                        on_superseded=superseded,
                    )
                finally:
                    for lease in claimed:
                        self._leases.release(lease)
                stats.passes += 1
                run_stats = self._runner.last_run_stats
                stats.scenarios_analyzed += run_stats.n_analyzed
                if run_stats.n_analyzed:
                    self._say(
                        f"pass {stats.passes}: analysed "
                        f"{run_stats.n_analyzed} scenario(s) "
                        f"({run_stats.n_day_tasks} day tasks)"
                    )
                if run_stats.complete:
                    self._say(
                        f"grid complete after {stats.passes} pass(es), "
                        f"{stats.scenarios_analyzed} analysed here"
                    )
                    return report
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"grid still has {run_stats.n_unclaimed} unclaimed "
                        f"scenario(s) after {self._timeout_s}s"
                    )
                if run_stats.n_analyzed == 0:
                    # Nothing claimable right now: competitors hold every
                    # remaining key.  Wait for completions or expiries.
                    stats.idle_waits += 1
                    time.sleep(self._poll_interval_s)
        finally:
            heartbeat.stop()
            self._leases.release_all()
            if sigterm_installed:
                signal.signal(signal.SIGTERM, previous_sigterm)


# --------------------------------------------------------------------------- #
# Prioritized multi-grid driver
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class GridJob:
    """One named, prioritized grid in a :func:`run_prioritized` batch."""

    name: str
    grid: Union[ScenarioGrid, Sequence]
    seed: int = 0
    analysis_seed: int = 0
    re_sensor_counts: Optional[Tuple[int, ...]] = None
    keep_recordings: bool = False

    def make_runner(self, mode: str = "serial") -> ScenarioSweepRunner:
        return ScenarioSweepRunner(
            self.grid,
            seed=self.seed,
            mode=mode,
            analysis_seed=self.analysis_seed,
            re_sensor_counts=self.re_sensor_counts,
            keep_recordings=self.keep_recordings,
        )


@dataclass
class PrioritizedRunResult:
    """Outcome of one :func:`run_prioritized` batch."""

    order: List[str]
    reports: Dict[str, SweepReport]
    log_paths: Dict[str, Path] = field(default_factory=dict)
    report_path: Optional[Path] = None

    def to_dict(self) -> Dict[str, object]:
        """The merged-report JSON shape (also what lands on disk)."""
        return {
            "format": 1,
            "order": list(self.order),
            "grids": {
                name: report.to_dict() for name, report in self.reports.items()
            },
        }


def _worker_entry(
    job: GridJob,
    store_dir: str,
    owner: str,
    lease_ttl_s: float,
    poll_interval_s: float,
    claim_chunk: int,
    timeout_s: Optional[float],
    log_path: Optional[str],
    faults: Optional[object] = None,
) -> None:
    """Child-process entry point of one fleet worker (module-level so both
    fork and spawn start methods can import it)."""
    lines: List[str] = []
    worker = SweepWorker(
        job.make_runner(mode="serial"),
        SweepStore(store_dir),
        owner=owner,
        lease_ttl_s=lease_ttl_s,
        claim_chunk=claim_chunk,
        poll_interval_s=poll_interval_s,
        timeout_s=timeout_s,
        log=lines.append,
        faults=faults,
    )
    try:
        worker.run()
    finally:
        if log_path is not None:
            with open(log_path, "a", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(line + "\n")


def _normalise_jobs(
    grids: Union[Mapping[str, object], Sequence[GridJob]],
) -> List[GridJob]:
    if isinstance(grids, Mapping):
        jobs = [GridJob(name=str(name), grid=grid) for name, grid in grids.items()]
    else:
        jobs = list(grids)
    if not jobs:
        raise ValueError("run_prioritized needs at least one grid")
    if not all(isinstance(job, GridJob) for job in jobs):
        raise TypeError("grids must be GridJobs or a name -> grid mapping")
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise ValueError(f"grid names must be unique, got {names}")
    return jobs


#: Exit codes :func:`run_prioritized` never respawns: a clean finish, the
#: driver's own ``terminate()`` (``-SIGTERM``) and the worker's graceful
#: SIGTERM unwind (``SystemExit(143)``) — only *unexpected* deaths count
#: against a worker slot's failure budget.
_NO_RESPAWN_EXITS = frozenset({0, 143, -int(signal.SIGTERM)})

#: Supervisor poll cadence while a fleet is running.
_SUPERVISE_POLL_S = 0.05


@dataclass
class _Slot:
    """One supervised worker slot of a :func:`run_prioritized` fleet."""

    proc: Optional[multiprocessing.process.BaseProcess]
    failures: int = 0
    restart_at: Optional[float] = None
    done: bool = False
    exit_codes: List[Optional[int]] = field(default_factory=list)


def run_prioritized(
    grids: Union[Mapping[str, object], Sequence[GridJob]],
    store: Union[SweepStore, str, Path],
    *,
    workers: int = 1,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    claim_chunk: int = 1,
    poll_interval_s: float = 0.2,
    worker_timeout_s: Optional[float] = None,
    log_dir: Optional[Union[str, Path]] = None,
    report_path: Optional[Union[str, Path]] = "SWEEP_report.json",
    mp_context: Optional[str] = None,
    max_worker_respawns: int = 2,
    respawn_backoff_s: float = 0.5,
    worker_faults: Optional[Mapping[int, object]] = None,
) -> PrioritizedRunResult:
    """Execute named grids in priority order over one shared store.

    Grids run strictly one after another (the *priority* contract: grid
    ``i+1`` starts only when grid ``i`` is complete); within a grid,
    ``workers`` processes cooperatively claim simulation keys through the
    lease protocol.  Every grid gets its own store subdirectory — so
    same-named scenarios in different grids never collide — its own log
    file under ``log_dir``, and its finished :class:`SweepReport`; the
    batch merges everything into one ``report_path`` JSON
    (:meth:`PrioritizedRunResult.to_dict`).

    Every grid is resumable: records persisted by an interrupted batch
    (even one whose workers were SIGKILL'd) are reused on the next
    invocation, and the driver itself runs a final single-process pass per
    grid, so a fleet that crashed mid-grid still leaves this call with a
    complete report — the surviving pass fills the holes serially.

    Parameters
    ----------
    grids:
        ``{name: ScenarioGrid}`` mapping (priority = insertion order) or
        an explicit :class:`GridJob` sequence for per-grid seeds.
    store:
        Root directory shared by every worker (a ``SweepStore`` or path).
    workers:
        Processes per grid.  1 runs in-process (no multiprocessing at
        all); N spawns N cooperative workers per grid.
    worker_timeout_s:
        Per-worker :class:`SweepWorker` timeout; also how long the driver
        waits for fleet processes before falling back to the serial pass.
    mp_context:
        Multiprocessing start method (``"fork"``/``"spawn"``); platform
        default when ``None``.
    max_worker_respawns:
        Per-slot failure budget of the supervisor: a worker process that
        dies with an unexpected exit code (crash, injected fault,
        SIGKILL) is respawned up to this many times, with exponential
        backoff (``respawn_backoff_s * 2**(failures-1)``).  Clean exits,
        graceful SIGTERM unwinds (143) and the driver's own terminate
        are never respawned.  Respawned workers run fault-free — the
        planned fault already happened; the replacement's job is
        recovery — under a fresh owner id, so the dead worker's leases
        expire rather than being mistaken for the replacement's.
    respawn_backoff_s:
        First-respawn backoff; doubles per subsequent failure of the
        same slot.
    worker_faults:
        Optional ``{slot index: FaultPlan}`` mapping, forwarded to the
        matching initial worker processes (chaos testing — see
        ``benchmarks/test_chaos_recovery.py``).  Respawns never inherit
        a plan.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if max_worker_respawns < 0:
        raise ValueError("max_worker_respawns must be >= 0")
    if respawn_backoff_s <= 0:
        raise ValueError("respawn_backoff_s must be positive")
    if worker_faults:
        bad = sorted(i for i in worker_faults if not 0 <= int(i) < workers)
        if bad:
            raise ValueError(
                f"worker_faults names slots {bad} outside 0..{workers - 1}"
            )
    jobs = _normalise_jobs(grids)
    root = Path(store.path if isinstance(store, SweepStore) else store)
    root.mkdir(parents=True, exist_ok=True)
    log_root = Path(log_dir) if log_dir is not None else None
    if log_root is not None:
        log_root.mkdir(parents=True, exist_ok=True)
    ctx = (
        multiprocessing.get_context(mp_context)
        if mp_context is not None
        else multiprocessing.get_context()
    )

    order: List[str] = []
    reports: Dict[str, SweepReport] = {}
    log_paths: Dict[str, Path] = {}
    for job in jobs:
        sub_store = SweepStore(root / name_slug(job.name))
        log_path: Optional[Path] = None
        lines: List[str] = []
        if log_root is not None:
            log_path = log_root / f"{name_slug(job.name)}.log"
            log_paths[job.name] = log_path
        t0 = time.perf_counter()
        exit_codes: List[Optional[int]] = []
        if workers > 1:
            deadline = (
                time.monotonic() + worker_timeout_s
                if worker_timeout_s is not None
                else None
            )

            def _spawn(slot_index: int, attempt: int, faults):
                proc = ctx.Process(
                    target=_worker_entry,
                    args=(
                        job,
                        str(sub_store.path),
                        f"{job.name}-w{slot_index}-a{attempt}-"
                        f"{uuid.uuid4().hex[:6]}",
                        lease_ttl_s,
                        poll_interval_s,
                        claim_chunk,
                        worker_timeout_s,
                        str(log_path) if log_path is not None else None,
                        faults,
                    ),
                    name=f"sweep-{job.name}-w{slot_index}",
                )
                proc.start()
                return proc

            slots = [
                _Slot(
                    proc=_spawn(
                        i,
                        0,
                        worker_faults.get(i) if worker_faults else None,
                    )
                )
                for i in range(workers)
            ]
            while True:
                now = time.monotonic()
                for i, slot in enumerate(slots):
                    if slot.done:
                        continue
                    if slot.proc is not None:
                        if slot.proc.is_alive():
                            continue
                        slot.proc.join()
                        code = slot.proc.exitcode
                        slot.exit_codes.append(code)
                        slot.proc = None
                        if code in _NO_RESPAWN_EXITS:
                            slot.done = True
                            continue
                        slot.failures += 1
                        if slot.failures > max_worker_respawns:
                            slot.done = True
                            lines.append(
                                f"[driver] worker {i} exhausted its "
                                f"{max_worker_respawns}-respawn budget "
                                f"(exit codes {slot.exit_codes}); the "
                                f"serial pass covers its keys"
                            )
                            continue
                        backoff = respawn_backoff_s * 2 ** (slot.failures - 1)
                        slot.restart_at = now + backoff
                        lines.append(
                            f"[driver] worker {i} died (exit {code}); "
                            f"respawn {slot.failures}/{max_worker_respawns} "
                            f"in {backoff:.2f}s"
                        )
                    elif (
                        slot.restart_at is not None
                        and now >= slot.restart_at
                    ):
                        # Respawns run fault-free under a fresh owner id:
                        # the planned fault already happened, and the dead
                        # worker's leases must expire, not be adopted.
                        slot.restart_at = None
                        slot.proc = _spawn(i, slot.failures, None)
                if all(slot.done for slot in slots):
                    break
                if deadline is not None and now >= deadline:
                    # Stuck fleet: the serial pass takes over.
                    for slot in slots:
                        if slot.proc is not None:
                            if slot.proc.is_alive():
                                slot.proc.terminate()
                            slot.proc.join()
                            slot.exit_codes.append(slot.proc.exitcode)
                            slot.proc = None
                        slot.done = True
                    break
                time.sleep(_SUPERVISE_POLL_S)
            exit_codes = [c for slot in slots for c in slot.exit_codes]
        # Final pass — also the single-process mode.  On a store the fleet
        # completed this is a pure warm read (zero claims, zero day
        # tasks); after a crash it serially fills whatever holes are left,
        # so the batch always ends with a complete grid.
        closer = SweepWorker(
            job.make_runner(mode="serial"),
            sub_store,
            lease_ttl_s=lease_ttl_s,
            claim_chunk=max(claim_chunk, 1),
            poll_interval_s=poll_interval_s,
            timeout_s=worker_timeout_s,
            log=lines.append,
        )
        report = closer.run()
        elapsed = time.perf_counter() - t0
        order.append(job.name)
        reports[job.name] = report
        stats = closer.last_worker_stats
        lines.append(
            f"[driver] grid {job.name!r}: {report.n_scenarios} scenarios in "
            f"{elapsed:.2f}s with {workers} worker(s); "
            f"final pass analysed {stats.scenarios_analyzed}, "
            f"worker exit codes {exit_codes if exit_codes else '[in-process]'}"
        )
        if log_path is not None:
            with open(log_path, "a", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(line + "\n")

    result = PrioritizedRunResult(order=order, reports=reports, log_paths=log_paths)
    if report_path is not None:
        result.report_path = Path(report_path)
        with open(result.report_path, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result

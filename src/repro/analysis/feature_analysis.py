"""Reproduction of the appendix feature analysis: Figures 11-12, Table V.

* **Figure 11** — Pearson correlation between the per-stream variance
  features over the labelled samples (streams between nearby devices react
  similarly).
* **Figure 12** — per-stream importance, measured as relative mutual
  information (RMI) with the class label, visualised on the office floor
  plan (here: returned as a per-stream score map).
* **Table V** — the 15 features with the highest RMI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ml.correlation import CorrelationResult, correlation_matrix
from ..ml.mutual_info import FeatureImportance, rank_features_by_rmi, stream_importance
from .campaign import AnalysisContext

__all__ = [
    "VarianceCorrelationResult",
    "compute_variance_correlations",
    "render_variance_correlations",
    "StreamImportanceResult",
    "compute_stream_importance",
    "render_stream_importance",
    "compute_rmi_ranking",
    "render_rmi_table",
]


@dataclass(frozen=True)
class VarianceCorrelationResult:
    """The Figure 11 correlation matrix over variance features."""

    correlation: CorrelationResult

    @property
    def stream_ids(self) -> Tuple[str, ...]:
        return self.correlation.names

    def mean_absolute_correlation(self) -> float:
        """Mean |corr| over distinct stream pairs (clutter indicator)."""
        mat = self.correlation.matrix
        n = mat.shape[0]
        if n < 2:
            return 0.0
        mask = ~np.eye(n, dtype=bool)
        return float(np.abs(mat[mask]).mean())


def compute_variance_correlations(
    context: AnalysisContext, n_sensors: Optional[int] = None
) -> VarianceCorrelationResult:
    """Compute Figure 11 from the labelled samples of a sensor count."""
    n = n_sensors if n_sensors is not None else context.max_sensors
    _, dataset = context.sample_dataset(n)
    if len(dataset) < 2:
        raise ValueError("need at least two labelled samples for correlations")
    X, _ = dataset.to_arrays()
    names = dataset.feature_names
    var_idx = [i for i, name in enumerate(names) if name.endswith("-var")]
    var_names = [names[i].rsplit("-", 1)[0] for i in var_idx]
    return VarianceCorrelationResult(
        correlation=correlation_matrix(X[:, var_idx], var_names)
    )


def render_variance_correlations(
    result: VarianceCorrelationResult, top_k: int = 10
) -> str:
    """Render a summary of the Figure 11 matrix (full matrix is large)."""
    mat = result.correlation.matrix
    names = result.correlation.names
    lines = [
        "Figure 11: correlations between per-stream variances",
        f"streams: {len(names)}",
        f"mean |correlation| across pairs: {result.mean_absolute_correlation():.3f}",
        f"top {top_k} most correlated pairs:",
    ]
    pairs = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            pairs.append((names[i], names[j], float(mat[i, j])))
    pairs.sort(key=lambda t: abs(t[2]), reverse=True)
    for a, b, c in pairs[:top_k]:
        lines.append(f"  {a:>7} ~ {b:<7} corr={c:+.3f}")
    return "\n".join(lines)


@dataclass(frozen=True)
class StreamImportanceResult:
    """The Figure 12 per-stream importance map."""

    scores: Dict[Tuple[str, str], float]
    ranked_features: Tuple[FeatureImportance, ...]

    def most_important_streams(self, top_k: int = 10) -> List[Tuple[str, str, float]]:
        items = sorted(self.scores.items(), key=lambda kv: kv[1], reverse=True)
        return [(a, b, score) for (a, b), score in items[:top_k]]

    def least_important_sensor(self) -> str:
        """The sensor whose streams contribute least (the paper singles out d5)."""
        per_sensor: Dict[str, float] = {}
        for (a, b), score in self.scores.items():
            per_sensor[a] = max(per_sensor.get(a, 0.0), score)
            per_sensor[b] = max(per_sensor.get(b, 0.0), score)
        if not per_sensor:
            return ""
        return min(per_sensor, key=per_sensor.get)


def compute_rmi_ranking(
    context: AnalysisContext,
    n_sensors: Optional[int] = None,
    *,
    bins: int = 256,
    drop_correlated_above: Optional[float] = 0.95,
    drop_uncorrelated_below: Optional[float] = None,
) -> List[FeatureImportance]:
    """Rank all RE features by RMI with the class label (Table V)."""
    n = n_sensors if n_sensors is not None else context.max_sensors
    _, dataset = context.sample_dataset(n)
    if len(dataset) == 0:
        raise ValueError("no labelled samples available")
    X, y = dataset.to_arrays()
    return rank_features_by_rmi(
        X,
        y,
        dataset.feature_names,
        bins=bins,
        drop_correlated_above=drop_correlated_above,
        drop_uncorrelated_below=drop_uncorrelated_below,
    )


def compute_stream_importance(
    context: AnalysisContext, n_sensors: Optional[int] = None, *, bins: int = 256
) -> StreamImportanceResult:
    """Compute the Figure 12 per-stream importance heat-map data."""
    ranked = compute_rmi_ranking(
        context, n_sensors, bins=bins, drop_correlated_above=None
    )
    return StreamImportanceResult(
        scores=stream_importance(ranked), ranked_features=tuple(ranked)
    )


def render_stream_importance(result: StreamImportanceResult, top_k: int = 10) -> str:
    """Render the Figure 12 data as a ranked list of streams."""
    lines = ["Figure 12: stream importance (max RMI over the stream's features)"]
    for a, b, score in result.most_important_streams(top_k):
        lines.append(f"  {a}-{b}: RMI={score:.4f}")
    least = result.least_important_sensor()
    if least:
        lines.append(f"least informative sensor: {least}")
    return "\n".join(lines)


def render_rmi_table(ranked: Sequence[FeatureImportance], top_k: int = 15) -> str:
    """Render Table V: the top-k features by RMI."""
    lines = [
        "Table V: top features by relative mutual information",
        f"{'rank':>4} | {'feature':>14} | {'RMI':>7}",
        "-" * 32,
    ]
    for rank, fi in enumerate(ranked[:top_k], start=1):
        lines.append(f"{rank:>4} | {fi.name:>14} | {fi.rmi:7.4f}")
    return "\n".join(lines)

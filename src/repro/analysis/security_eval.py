"""Reproduction of Figures 9 and 10: deauthentication latency and attacks.

* **Figure 9** — proportion of workstations deauthenticated within ``x``
  seconds of the user leaving, for 3 / 5 / 7 / 9 sensors.
* **Figure 10** — percentage of departures each adversary (Insider /
  Co-worker) could exploit, for the time-out baseline and 3-9 sensors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.adversary import COWORKER, INSIDER, Adversary, attack_opportunities
from ..core.baseline import TimeoutBaseline
from ..core.security import DeauthCase, case_counts, deauthentication_curve
from ..mobility.events import EventKind
from .campaign import AnalysisContext

__all__ = [
    "DeauthCurve",
    "compute_deauth_curves",
    "render_deauth_curves",
    "AttackOpportunityRow",
    "compute_attack_opportunities",
    "render_attack_opportunities",
]


@dataclass(frozen=True)
class DeauthCurve:
    """One Figure 9 line: cumulative deauthentication percentage vs time."""

    n_sensors: int
    times: np.ndarray
    percent_deauthenticated: np.ndarray
    case_histogram: Dict[DeauthCase, int]

    def percent_within(self, seconds: float) -> float:
        """Percentage of departures deauthenticated within ``seconds``."""
        idx = np.searchsorted(self.times, seconds, side="right") - 1
        if idx < 0:
            return 0.0
        return float(self.percent_deauthenticated[idx])


def compute_deauth_curves(
    context: AnalysisContext,
    sensor_counts: Sequence[int] = (3, 5, 7, 9),
    max_time_s: float = 10.0,
) -> List[DeauthCurve]:
    """Compute the Figure 9 curves."""
    curves = []
    for n in sensor_counts:
        if n > context.max_sensors:
            continue
        outcomes = context.outcomes(n)
        times, percent = deauthentication_curve(outcomes, max_time_s=max_time_s)
        curves.append(
            DeauthCurve(
                n_sensors=n,
                times=times,
                percent_deauthenticated=percent,
                case_histogram=case_counts(outcomes),
            )
        )
    return curves


def render_deauth_curves(curves: Sequence[DeauthCurve]) -> str:
    """Render the Figure 9 data as a text table."""
    if not curves:
        return "Figure 9: no curves"
    lines = ["Figure 9: proportion of deauthenticated workstations vs elapsed time"]
    checkpoints = [2.0, 4.0, 6.0, 8.0, 10.0]
    header = f"{'sensors':>8} | " + " | ".join(f"<={t:.0f}s" for t in checkpoints)
    lines.append(header)
    lines.append("-" * len(header))
    for curve in curves:
        row = f"{curve.n_sensors:>8} | " + " | ".join(
            f"{curve.percent_within(t):4.0f}%" for t in checkpoints
        )
        lines.append(row)
    for curve in curves:
        cases = {c.value: n for c, n in curve.case_histogram.items()}
        lines.append(f"{curve.n_sensors} sensors cases A/B/C: {cases}")
    return "\n".join(lines)


@dataclass(frozen=True)
class AttackOpportunityRow:
    """One bar group of Figure 10: attack opportunities at one configuration."""

    label: str
    insider_pct: float
    coworker_pct: float
    insider_count: int
    coworker_count: int
    total_departures: int


def compute_attack_opportunities(
    context: AnalysisContext,
    sensor_counts: Optional[Sequence[int]] = None,
    insider: Adversary = INSIDER,
    coworker: Adversary = COWORKER,
) -> List[AttackOpportunityRow]:
    """Compute the Figure 10 rows: time-out baseline first, then 3-9 sensors."""
    rows: List[AttackOpportunityRow] = []

    departures = [
        e
        for day in context.recording.days
        for e in day.events
        if e.kind is EventKind.DEPARTURE
    ]
    total = len(departures)
    baseline = TimeoutBaseline(timeout_s=context.config.timeout_s)
    b_in = baseline.attack_opportunity_count(departures, insider)
    b_co = baseline.attack_opportunity_count(departures, coworker)
    rows.append(
        AttackOpportunityRow(
            label="timeout",
            insider_pct=100.0 * b_in / total if total else 0.0,
            coworker_pct=100.0 * b_co / total if total else 0.0,
            insider_count=b_in,
            coworker_count=b_co,
            total_departures=total,
        )
    )

    for n in context.sensor_sweep(sensor_counts):
        outcomes = context.outcomes(n)
        n_total = len(outcomes)
        ins = len(attack_opportunities(outcomes, insider))
        cow = len(attack_opportunities(outcomes, coworker))
        rows.append(
            AttackOpportunityRow(
                label=f"{n} sensors",
                insider_pct=100.0 * ins / n_total if n_total else 0.0,
                coworker_pct=100.0 * cow / n_total if n_total else 0.0,
                insider_count=ins,
                coworker_count=cow,
                total_departures=n_total,
            )
        )
    return rows


def render_attack_opportunities(rows: Sequence[AttackOpportunityRow]) -> str:
    """Render the Figure 10 data as a text table."""
    lines = [
        "Figure 10: attack opportunities (percentage of departures exploitable)",
        f"{'configuration':>14} | {'Insider':>10} | {'Co-worker':>10} | {'departures':>10}",
    ]
    lines.append("-" * len(lines[1]))
    for row in rows:
        lines.append(
            f"{row.label:>14} | "
            f"{row.insider_pct:6.1f}% ({row.insider_count:>3}) | "
            f"{row.coworker_pct:6.1f}% ({row.coworker_count:>3}) | "
            f"{row.total_departures:>10}"
        )
    return "\n".join(lines)

"""Reproduction of Table III and Figure 7: MD detection performance.

* **Table III** — TP / FP / FN of the Movement Detection module, as
  fractions and absolute counts, for 3-9 sensors at ``t_delta = 4.5 s``.
* **Figure 7** — the F-measure of MD as a function of ``t_delta`` for
  3 / 5 / 7 / 9 sensors.

Because MD's variation windows do not depend on ``t_delta`` (it only
filters which windows trigger decisions), the ``t_delta`` sweep re-scores
the same detection output, which keeps the sweep cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ml.metrics import DetectionCounts
from .campaign import AnalysisContext

__all__ = [
    "MDTableRow",
    "compute_md_table",
    "render_md_table",
    "FMeasureCurve",
    "compute_fmeasure_curves",
    "render_fmeasure_curves",
]


@dataclass(frozen=True)
class MDTableRow:
    """One row of Table III: MD performance at one sensor count."""

    n_sensors: int
    counts: DetectionCounts

    @property
    def rates(self) -> Dict[str, float]:
        return self.counts.rates()

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form: absolute counts plus the derived rates.

        The counts are authoritative — :meth:`from_dict` reconstructs the
        :class:`~repro.ml.metrics.DetectionCounts` from ``tp``/``fp``/``fn``
        alone and rederives every rate exactly — while the rounded rate
        fields keep the export human-readable.  ``rates()`` reuses the
        tp/fp/fn names for fractions, so they are suffixed with ``_rate``
        to never clobber the counts.
        """
        c = self.counts
        return {
            "n_sensors": self.n_sensors,
            "tp": c.tp,
            "fp": c.fp,
            "fn": c.fn,
            **{f"{k}_rate": round(v, 6) for k, v in self.rates.items()},
            "precision": round(c.precision, 6),
            "recall": round(c.recall, 6),
            "f_measure": round(c.f_measure, 6),
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "MDTableRow":
        """Rebuild a row (and its :class:`DetectionCounts`) from :meth:`to_dict`."""
        return MDTableRow(
            n_sensors=int(data["n_sensors"]),
            counts=DetectionCounts(
                tp=int(data["tp"]), fp=int(data["fp"]), fn=int(data["fn"])
            ),
        )


def compute_md_table(
    context: AnalysisContext, sensor_counts: Optional[Sequence[int]] = None
) -> List[MDTableRow]:
    """Compute Table III rows for every sensor count.

    The whole sweep is evaluated in one batch
    (:meth:`~repro.analysis.campaign.AnalysisContext.md_evaluations`), so
    the rolling feature matrix is shared across counts.
    """
    counts = context.sensor_sweep(sensor_counts)
    evaluations = context.md_evaluations(counts)
    return [
        MDTableRow(n_sensors=n, counts=evaluations[n].counts) for n in counts
    ]


def render_md_table(rows: Sequence[MDTableRow]) -> str:
    """Render Table III in the paper's format."""
    lines = [
        "Table III: MD performance (fractions, absolute counts in parentheses)",
        f"{'sensors':>8} | {'TP':>12} | {'FP':>12} | {'FN':>12}",
        "-" * 55,
    ]
    for row in rows:
        r = row.rates
        c = row.counts
        lines.append(
            f"{row.n_sensors:>8} | "
            f"{r['tp']:.2f} ({c.tp:>3}) | "
            f"{r['fp']:.2f} ({c.fp:>3}) | "
            f"{r['fn']:.2f} ({c.fn:>3})"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class FMeasureCurve:
    """F-measure vs ``t_delta`` for one sensor count (one line of Figure 7)."""

    n_sensors: int
    t_deltas: Tuple[float, ...]
    f_measures: Tuple[float, ...]

    def peak(self) -> Tuple[float, float]:
        """``(t_delta, f_measure)`` at the curve's maximum."""
        idx = int(np.argmax(self.f_measures))
        return self.t_deltas[idx], self.f_measures[idx]


def compute_fmeasure_curves(
    context: AnalysisContext,
    t_deltas: Optional[Sequence[float]] = None,
    sensor_counts: Sequence[int] = (3, 5, 7, 9),
) -> List[FMeasureCurve]:
    """Compute the Figure 7 curves.

    Parameters
    ----------
    t_deltas:
        The swept ``t_delta`` values; the paper's 2-8 s range when omitted.
    sensor_counts:
        The sensor counts plotted (3, 5, 7, 9 in the paper).
    """
    if t_deltas is None:
        t_deltas = np.arange(2.0, 8.01, 0.5)
    curves = []
    slack = context.config.true_window_slack_s
    plotted = [n for n in sensor_counts if n <= context.max_sensors]
    evaluations = context.md_evaluations(plotted)
    for n in plotted:
        evaluation = evaluations[n]
        values = []
        for t_delta in t_deltas:
            rescored = evaluation.rematch(float(t_delta), slack)
            values.append(rescored.counts.f_measure)
        curves.append(
            FMeasureCurve(
                n_sensors=n,
                t_deltas=tuple(float(t) for t in t_deltas),
                f_measures=tuple(values),
            )
        )
    return curves


def render_fmeasure_curves(curves: Sequence[FMeasureCurve]) -> str:
    """Render the Figure 7 data as an aligned text table.

    Caller-supplied curves need not share one ``t_delta`` grid
    (:func:`compute_fmeasure_curves` always produces a common grid, but
    curves from different sweeps may be combined): the rows span the sorted
    union of all grids and a curve without a value at some ``t_delta``
    renders a blank cell.  Indexing every curve with the first curve's grid
    — the previous behaviour — raised ``IndexError`` on shorter curves and
    silently misaligned columns on equal-length but shifted grids.
    """
    if not curves:
        return "Figure 7: no curves"
    for c in curves:
        if len(c.t_deltas) != len(c.f_measures):
            raise ValueError(
                f"curve for {c.n_sensors} sensors has {len(c.t_deltas)} "
                f"t_deltas but {len(c.f_measures)} f_measures"
            )
        if len(set(c.t_deltas)) != len(c.t_deltas):
            # A t_delta-keyed table cell can hold one value; silently
            # keeping the last duplicate would misreport the curve.
            raise ValueError(
                f"curve for {c.n_sensors} sensors has duplicate t_deltas"
            )
    header = "Figure 7: MD F-measure vs t_delta"
    t_deltas = sorted({float(t) for c in curves for t in c.t_deltas})
    by_curve = [dict(zip(c.t_deltas, c.f_measures)) for c in curves]
    lines = [header, "t_delta | " + " | ".join(f"{n}-sens" for n in (c.n_sensors for c in curves))]
    lines.append("-" * len(lines[1]))
    for t in t_deltas:
        row = f"{t:7.1f} | " + " | ".join(
            f"{values[t]:6.3f}" if t in values else f"{'-':>6}"
            for values in by_curve
        )
        lines.append(row)
    for c in curves:
        t_peak, f_peak = c.peak()
        lines.append(
            f"peak ({c.n_sensors} sensors): F={f_peak:.3f} at t_delta={t_peak:.1f} s"
        )
    return "\n".join(lines)

"""Reproduction of Table IV: usability cost per day.

For every sensor count, the system's decisions (Rule-1 deauthentications
and Rule-2 alert periods) are replayed against freshly drawn Mikkelsen-style
keyboard/mouse input, and the number of *incorrect* decisions — screen
savers and deauthentications affecting a present user — is counted and
converted into a per-day time cost (3 s per screen saver, 13 s per
re-login).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.usability import UsabilityDayInput, UsabilityResult, UsabilitySimulator
from ..core.windows import VariationWindow
from ..mobility.events import EventKind
from ..simulation.collector import DayRecording
from .campaign import AnalysisContext

__all__ = [
    "UsabilityTableRow",
    "presence_intervals_from_events",
    "build_usability_inputs",
    "compute_usability_table",
    "render_usability_table",
]


def presence_intervals_from_events(
    day: DayRecording, workstation_ids: Sequence[str]
) -> Dict[str, Tuple[Tuple[float, float], ...]]:
    """Reconstruct per-workstation presence intervals from ground truth.

    A user is considered present at their workstation from the start of the
    day (or from shortly after an office entry) until their next departure.
    The short walking phases are folded into the adjacent absence.
    """
    presence: Dict[str, Tuple[Tuple[float, float], ...]] = {}
    settle_s = 10.0  # walking from the door to the seat after an entry
    for wid in workstation_ids:
        events = sorted(
            (
                e
                for e in day.events
                if e.workstation_id == wid
                and e.kind in (EventKind.DEPARTURE, EventKind.ENTRY)
            ),
            key=lambda e: e.time,
        )
        intervals: List[Tuple[float, float]] = []
        present_since: Optional[float] = 0.0
        for event in events:
            if event.kind is EventKind.DEPARTURE:
                if present_since is not None:
                    intervals.append((present_since, event.time))
                    present_since = None
            else:  # ENTRY
                if present_since is None:
                    present_since = event.time + settle_s
        if present_since is not None:
            intervals.append((present_since, day.duration_s))
        presence[wid] = tuple(intervals)
    return presence


def build_usability_inputs(
    context: AnalysisContext, n_sensors: int
) -> List[UsabilityDayInput]:
    """Assemble the per-day usability inputs for one sensor count.

    Every variation window of at least ``t_delta`` seconds triggered a
    Rule-1 decision.  True-positive windows carry their out-of-fold RE
    prediction; false-positive windows are classified by an RE instance
    trained on the full dataset (the online system would have used its
    installed classifier for them too).
    """
    config = context.config
    evaluation = context.md_evaluation(n_sensors)
    re_module, dataset = context.sample_dataset(n_sensors)
    predictions = context.re_predictions(n_sensors)

    prediction_by_key: Dict[Tuple[int, float], str] = {}
    for idx, label in predictions.items():
        sample = dataset.samples[idx]
        prediction_by_key[(sample.day_index, round(sample.time, 6))] = label

    full_re = None
    if len(dataset) and len(set(dataset.labels)) >= 2:
        full_re = re_module.clone_untrained().fit(dataset)

    inputs: List[UsabilityDayInput] = []
    workstation_ids = context.layout.workstation_ids
    for day_eval, day_rec in zip(evaluation.days, context.recording.days):
        decisions: List[Tuple[VariationWindow, str]] = []
        for window in day_eval.md_result.windows_at_least(config.t_delta_s):
            key = (day_eval.day_index, round(window.t_start, 6))
            if key in prediction_by_key:
                label = prediction_by_key[key]
            elif full_re is not None:
                label = full_re.classify_window(
                    day_eval.trace, window, config.t_delta_s
                )
            else:
                label = "w0"
            decisions.append((window, label))
        presence = presence_intervals_from_events(day_rec, workstation_ids)
        inputs.append(
            UsabilityDayInput(
                decisions=tuple(decisions),
                presence=presence,
                duration_s=day_rec.duration_s,
            )
        )
    return inputs


@dataclass(frozen=True)
class UsabilityTableRow:
    """One row of Table IV."""

    n_sensors: int
    result: UsabilityResult


def compute_usability_table(
    context: AnalysisContext,
    sensor_counts: Optional[Sequence[int]] = None,
    *,
    n_draws: int = 100,
    seed: int = 0,
) -> List[UsabilityTableRow]:
    """Compute Table IV for every sensor count."""
    rows = []
    for n in context.sensor_sweep(sensor_counts):
        inputs = build_usability_inputs(context, n)
        simulator = UsabilitySimulator(
            context.config, rng=np.random.default_rng(seed)
        )
        rows.append(
            UsabilityTableRow(n_sensors=n, result=simulator.run(inputs, n_draws))
        )
    return rows


def render_usability_table(rows: Sequence[UsabilityTableRow]) -> str:
    """Render Table IV in the paper's format."""
    lines = [
        "Table IV: incorrect decisions and daily cost (std in parentheses)",
        f"{'sensors':>8} | {'screensavers/day':>18} | {'deauth/day':>16} | {'cost (s)/day':>12}",
    ]
    lines.append("-" * len(lines[1]))
    for row in rows:
        r = row.result
        lines.append(
            f"{row.n_sensors:>8} | "
            f"{r.screensavers_per_day:7.3f} ({r.screensavers_std:5.2f})   | "
            f"{r.deauthentications_per_day:6.3f} ({r.deauthentications_std:5.2f}) | "
            f"{r.cost_per_day_s:12.2f}"
        )
    return "\n".join(lines)

"""Reproduction of Figure 13: vulnerable time vs total user cost.

The figure compares the inactivity time-out (T = 300 s: zero user cost but
a large amount of time during which unattended workstations remain
authenticated) with FADEWICH at increasing sensor counts (a small, quickly
stabilising user cost buys an exponential reduction of the vulnerable
time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.baseline import TimeoutBaseline
from ..core.security import vulnerable_time_seconds
from ..mobility.events import EventKind, GroundTruthEvent
from .campaign import AnalysisContext
from .usability_eval import build_usability_inputs
from ..core.usability import UsabilitySimulator

__all__ = ["TradeoffPoint", "compute_tradeoff", "render_tradeoff"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of Figure 13: a configuration's security/usability trade-off."""

    label: str
    vulnerable_time_min: float
    total_cost_min: float


def _absence_lookup(context: AnalysisContext):
    """Build an event -> absence-duration lookup from the ground truth.

    The absence of a departure is the time until the same user's next
    office entry (or the end of the day).
    """
    absence: Dict[int, float] = {}
    for day in context.recording.days:
        events = sorted(day.events, key=lambda e: e.time)
        for i, event in enumerate(events):
            if event.kind is not EventKind.DEPARTURE:
                continue
            until = day.duration_s - event.time
            for later in events[i + 1 :]:
                if later.user_id == event.user_id and later.kind is EventKind.ENTRY:
                    until = later.time - event.time
                    break
            absence[id(event)] = max(until, 0.0)

    def lookup(event: GroundTruthEvent) -> float:
        return absence.get(id(event), 0.0)

    return lookup


def compute_tradeoff(
    context: AnalysisContext,
    sensor_counts: Optional[Sequence[int]] = None,
    *,
    n_draws: int = 20,
    seed: int = 0,
) -> List[TradeoffPoint]:
    """Compute the Figure 13 points: time-out first, then 3-9 sensors."""
    points: List[TradeoffPoint] = []
    lookup = _absence_lookup(context)
    n_days = context.recording.n_days

    departures = [
        e
        for day in context.recording.days
        for e in day.events
        if e.kind is EventKind.DEPARTURE
    ]
    absences = [lookup(e) for e in departures]
    baseline = TimeoutBaseline(timeout_s=context.config.timeout_s)
    points.append(
        TradeoffPoint(
            label="timeout",
            vulnerable_time_min=baseline.vulnerable_time_seconds(departures, absences)
            / 60.0,
            total_cost_min=baseline.user_cost_seconds / 60.0,
        )
    )

    for n in context.sensor_sweep(sensor_counts):
        outcomes = context.outcomes(n)
        vulnerable = vulnerable_time_seconds(outcomes, absence_lookup=lookup)
        inputs = build_usability_inputs(context, n)
        simulator = UsabilitySimulator(
            context.config, rng=np.random.default_rng(seed)
        )
        usability = simulator.run(inputs, n_draws=n_draws)
        points.append(
            TradeoffPoint(
                label=f"{n} sensors",
                vulnerable_time_min=vulnerable / 60.0,
                total_cost_min=usability.cost_per_day_s * n_days / 60.0,
            )
        )
    return points


def render_tradeoff(points: Sequence[TradeoffPoint]) -> str:
    """Render the Figure 13 data as a text table."""
    lines = [
        "Figure 13: vulnerable time vs total user cost (whole campaign)",
        f"{'configuration':>14} | {'vulnerable (min)':>16} | {'cost (min)':>10}",
    ]
    lines.append("-" * len(lines[1]))
    for p in points:
        lines.append(
            f"{p.label:>14} | {p.vulnerable_time_min:16.2f} | {p.total_cost_min:10.2f}"
        )
    return "\n".join(lines)

"""Gaussian kernel density estimation for the MD normal profile.

The Movement Detection module builds a "normal profile" of the sum of
per-stream standard deviations and thresholds new observations against the
(100 - alpha)-th percentile of the estimated distribution (paper Section
IV-C2).  The paper estimates the density with a Gaussian kernel; this module
provides that estimator, with Scott's and Silverman's bandwidth rules, plus
the CDF / percentile queries Algorithm 1 needs.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np
from scipy.special import erf

__all__ = ["GaussianKDE", "scott_bandwidth", "silverman_bandwidth"]


def scott_bandwidth(data: np.ndarray) -> float:
    """Scott's rule of thumb bandwidth ``sigma * n^(-1/5)``."""
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    if n < 2:
        return 1.0
    sigma = float(np.std(data, ddof=1))
    if sigma <= 0:
        return 1.0
    return sigma * n ** (-1.0 / 5.0)


def silverman_bandwidth(data: np.ndarray) -> float:
    """Silverman's rule of thumb, robust to heavy tails via the IQR."""
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    if n < 2:
        return 1.0
    sigma = float(np.std(data, ddof=1))
    iqr = float(np.subtract(*np.percentile(data, [75, 25])))
    spread = min(sigma, iqr / 1.349) if iqr > 0 else sigma
    if spread <= 0:
        return 1.0
    return 0.9 * spread * n ** (-1.0 / 5.0)


class GaussianKDE:
    """One-dimensional Gaussian kernel density estimator.

    Parameters
    ----------
    data:
        Sample of the quantity being profiled (e.g. the sums of per-stream
        standard deviations observed while the office is quiet).
    bandwidth:
        Kernel bandwidth ``h``.  If a string, one of ``"scott"`` or
        ``"silverman"``; if a float, used directly.

    Notes
    -----
    The estimated density is

    .. math:: \\hat f(x) = \\frac{1}{n h} \\sum_i K\\left(\\frac{x - x_i}{h}\\right)

    with ``K`` the standard normal pdf, exactly the form in the paper's
    Section IV-C1.
    """

    def __init__(
        self,
        data: Iterable[float],
        bandwidth: Union[str, float] = "scott",
    ) -> None:
        data = np.asarray(list(data) if not isinstance(data, np.ndarray) else data,
                          dtype=float).ravel()
        if data.size == 0:
            raise ValueError("GaussianKDE requires at least one data point")
        self._data = data
        if isinstance(bandwidth, str):
            if bandwidth == "scott":
                self._h = scott_bandwidth(data)
            elif bandwidth == "silverman":
                self._h = silverman_bandwidth(data)
            else:
                raise ValueError(f"unknown bandwidth rule: {bandwidth!r}")
        else:
            h = float(bandwidth)
            if h <= 0:
                raise ValueError("bandwidth must be positive")
            self._h = h

    # ------------------------------------------------------------------ #
    @property
    def data(self) -> np.ndarray:
        """The training sample (read-only view)."""
        return self._data

    @property
    def bandwidth(self) -> float:
        """The kernel bandwidth in use."""
        return self._h

    @property
    def n(self) -> int:
        """Number of training points."""
        return int(self._data.shape[0])

    # ------------------------------------------------------------------ #
    def pdf(self, x: Union[float, np.ndarray]) -> np.ndarray:
        """Evaluate the estimated density at ``x`` (scalar or array)."""
        x = np.atleast_1d(np.asarray(x, dtype=float))
        z = (x[:, None] - self._data[None, :]) / self._h
        dens = np.exp(-0.5 * z ** 2).sum(axis=1)
        dens /= self.n * self._h * np.sqrt(2.0 * np.pi)
        return dens

    def cdf(self, x: Union[float, np.ndarray]) -> np.ndarray:
        """Evaluate the estimated cumulative distribution at ``x``."""
        x = np.atleast_1d(np.asarray(x, dtype=float))
        z = (x[:, None] - self._data[None, :]) / self._h
        return 0.5 * (1.0 + erf(z / np.sqrt(2.0))).mean(axis=1)

    def percentile(self, q: float, *, tol: float = 1e-6, max_iter: int = 200) -> float:
        """Return the value below which ``q`` percent of the mass lies.

        Parameters
        ----------
        q:
            Percentile in ``[0, 100]``.  Algorithm 1 queries the
            ``(100 - alpha)``-th percentile as its anomaly threshold.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be within [0, 100]")
        target = q / 100.0
        lo = float(self._data.min() - 10.0 * self._h)
        hi = float(self._data.max() + 10.0 * self._h)
        # Expand until the CDF brackets the target.
        for _ in range(64):
            if float(self.cdf(lo)[0]) <= target:
                break
            lo -= 10.0 * self._h
        for _ in range(64):
            if float(self.cdf(hi)[0]) >= target:
                break
            hi += 10.0 * self._h
        for _ in range(max_iter):
            mid = 0.5 * (lo + hi)
            if float(self.cdf(mid)[0]) < target:
                lo = mid
            else:
                hi = mid
            if hi - lo < tol:
                break
        return 0.5 * (lo + hi)

    def sample(self, size: int, rng: np.random.Generator = None) -> np.ndarray:
        """Draw ``size`` samples from the estimated density."""
        if rng is None:
            rng = np.random.default_rng()
        centers = rng.choice(self._data, size=size, replace=True)
        return centers + rng.normal(0.0, self._h, size=size)

    def updated(self, new_data: Iterable[float], drop_oldest: int = 0) -> "GaussianKDE":
        """Return a new KDE with ``new_data`` appended.

        The MD module's profile update (Section IV-C3) appends a batch of
        recent measurements while removing the ``drop_oldest`` oldest ones so
        the profile tracks the slowly varying radio environment.
        """
        new_data = np.asarray(list(new_data), dtype=float).ravel()
        kept = self._data[drop_oldest:] if drop_oldest > 0 else self._data
        combined = np.concatenate([kept, new_data])
        if combined.size == 0:
            raise ValueError("profile update would leave no data")
        return GaussianKDE(combined, bandwidth="scott")

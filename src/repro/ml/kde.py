"""Gaussian kernel density estimation for the MD normal profile.

The Movement Detection module builds a "normal profile" of the sum of
per-stream standard deviations and thresholds new observations against the
(100 - alpha)-th percentile of the estimated distribution (paper Section
IV-C2).  The paper estimates the density with a Gaussian kernel; this module
provides that estimator, with Scott's and Silverman's bandwidth rules, plus
the CDF / percentile queries Algorithm 1 needs.

Quantile engine
---------------

The percentile is the root of ``CDF(x) - q/100`` on the Gaussian-mixture
CDF.  :func:`mixture_quantiles` solves it for a whole ``(n_profiles,
n_data)`` matrix of independent profiles at once with a safeguarded Newton
iteration: the mixture PDF is the exact analytic derivative of the CDF, so
Newton steps converge superlinearly, a maintained bracket catches steps
that leave it (falling back to bisection), and callers tracking a slowly
moving threshold (the profile chains of Algorithm 1) warm-start from the
previous threshold via ``x0``.  Every per-row operation is independent of
the other rows, so solving a profile alone or inside a batch is
**bit-identical** — the property the scalar/lockstep equivalence suite
relies on (:meth:`GaussianKDE.percentile` and the batch engine in
:mod:`repro.core.movement` both delegate here).

:func:`bisect_quantiles` retains the pre-Newton bracketed bisection as the
reference threshold rule; the regression suite pins the Newton engine to
within the old ``tol`` of it.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np
from scipy.special import erf

__all__ = [
    "GaussianKDE",
    "scott_bandwidth",
    "silverman_bandwidth",
    "mixture_quantiles",
    "bisect_quantiles",
]

_SQRT2 = np.sqrt(2.0)
_SQRT2PI = np.sqrt(2.0 * np.pi)


def scott_bandwidth(data: np.ndarray) -> float:
    """Scott's rule of thumb bandwidth ``sigma * n^(-1/5)``."""
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    if n < 2:
        return 1.0
    sigma = float(np.std(data, ddof=1))
    if sigma <= 0:
        return 1.0
    return sigma * n ** (-1.0 / 5.0)


def silverman_bandwidth(data: np.ndarray) -> float:
    """Silverman's rule of thumb, robust to heavy tails via the IQR."""
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    if n < 2:
        return 1.0
    sigma = float(np.std(data, ddof=1))
    iqr = float(np.subtract(*np.percentile(data, [75, 25])))
    spread = min(sigma, iqr / 1.349) if iqr > 0 else sigma
    if spread <= 0:
        return 1.0
    return 0.9 * spread * n ** (-1.0 / 5.0)


# ---------------------------------------------------------------------- #
# Row-wise mixture CDF / PDF / quantile engine
# ---------------------------------------------------------------------- #
def _rows_cdf(data: np.ndarray, h: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Row-wise mixture CDF: ``out[i] = CDF_i(x[i])`` for profile rows."""
    z = (x[:, None] - data) / h[:, None]
    z /= _SQRT2
    return np.add.reduce(0.5 * (1.0 + erf(z)), axis=1) / data.shape[1]


def _rows_cdf_pdf(
    scaled_data: np.ndarray,
    scaled_x: np.ndarray,
    pdf_scale: np.ndarray,
    cdf_scale: float,
    wbuf: np.ndarray,
    ebuf: np.ndarray,
) -> tuple:
    """Row-wise mixture ``(CDF, PDF)`` from pre-scaled residual inputs.

    Operates on ``w = (x - data) / (h * sqrt(2))``: the mixture CDF is
    ``cdf_scale * sum(1 + erf(w))`` and — since ``z^2 / 2 == w^2`` — the
    PDF is ``pdf_scale * sum(exp(-w^2))``, so one residual array feeds both
    transcendental passes of a Newton iteration.  ``scaled_data`` /
    ``scaled_x`` are ``data`` and ``x`` pre-multiplied by ``1 / (h *
    sqrt(2))`` (hoisted out of the iteration loop by the caller), and
    ``wbuf`` / ``ebuf`` are preallocated scratch buffers of
    ``scaled_data``'s shape.
    """
    w = np.subtract(scaled_x[:, None], scaled_data, out=wbuf)
    e = np.multiply(w, w, out=ebuf)
    np.negative(e, out=e)
    np.exp(e, out=e)
    pdf = np.add.reduce(e, axis=1) * pdf_scale
    erf(w, out=w)
    w += 1.0
    cdf = np.add.reduce(w, axis=1) * cdf_scale
    return cdf, pdf


def _initial_brackets(data: np.ndarray, h: np.ndarray, q: float) -> tuple:
    """``[lo, hi] = [min - 10h, max + 10h]`` brackets, validated per row.

    The nearest kernel centre sits ten bandwidths inside either bound, so
    the mixture CDF is *exactly* 0 at ``lo`` and 1 at ``hi`` in double
    precision (``erfc(10 / sqrt(2)) ~ 2.8e-23`` rounds away against 1):
    every target in ``[0, 1]`` is bracketed by construction.  The only way
    a bracket can be invalid is non-finite profile data or bandwidth, which
    raises a clear error here instead of letting the solver silently
    iterate on ``[NaN, NaN]`` (the failure mode the old expansion loops
    hid by exhausting their 64 steps without ever bracketing).
    """
    lo = data.min(axis=1) - 10.0 * h
    hi = data.max(axis=1) + 10.0 * h
    invalid = ~(np.isfinite(lo) & np.isfinite(hi))
    if invalid.any():
        raise ValueError(
            f"cannot bracket the {q}-th percentile for "
            f"{int(np.count_nonzero(invalid))} profile(s): non-finite "
            "profile data or bandwidth (NaN/inf in the KDE window)"
        )
    return lo, hi


def mixture_quantiles(
    data: np.ndarray,
    bandwidths: np.ndarray,
    q: float,
    *,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-6,
    max_iter: int = 100,
) -> np.ndarray:
    """The ``q``-th percentile of many independent Gaussian-mixture KDEs.

    Parameters
    ----------
    data:
        ``(n_profiles, n_data)`` matrix; each row is one profile's data
        window.
    bandwidths:
        Per-row kernel bandwidth ``h``.
    q:
        Percentile in ``[0, 100]``.  Algorithm 1 queries the
        ``(100 - alpha)``-th percentile as its anomaly threshold.
    x0:
        Optional per-row initial guesses — the previous thresholds of the
        profile chains.  A warm start typically halves the number of CDF
        evaluations; rows whose guess is not finite or falls outside the
        bracket start from the empirical data quantile instead.
    tol:
        Accuracy of the returned quantile.  Iteration stops once a row's
        accepted Newton step falls below ``tol / 10`` (superlinear
        contraction near the root leaves the residual far smaller still)
        or its bracket is narrower than ``tol / 2``, keeping the result
        well within ``tol`` of the true quantile.
    max_iter:
        Safety cap on iterations; the bisection safeguard guarantees the
        bracket at least halves whenever a Newton step is rejected, so the
        cap is never reached in practice.

    Notes
    -----
    Row arithmetic is strictly independent: solving one profile alone is
    bit-identical to solving it inside any batch.  The scalar
    :meth:`GaussianKDE.percentile` and the lockstep profile engine of
    :mod:`repro.core.movement` both call this function, which is what keeps
    their thresholds bit-for-bit equal.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    data = np.ascontiguousarray(np.asarray(data, dtype=float))
    if data.ndim != 2:
        raise ValueError("data must be a (n_profiles, n_data) matrix")
    h = np.asarray(bandwidths, dtype=float)
    if h.shape != (data.shape[0],):
        raise ValueError("bandwidths must hold one value per profile row")
    target = q / 100.0
    lo, hi = _initial_brackets(data, h, q)

    # Initial iterate: the warm-start threshold where one is usable, the
    # empirical data quantile otherwise (within O(h) of the KDE quantile,
    # so the first Newton step already lands near the root).  The sort
    # behind np.quantile is skipped entirely when every row warm-starts —
    # the common case along a profile chain.
    usable = None
    if x0 is not None:
        x0 = np.asarray(x0, dtype=float)
        usable = np.isfinite(x0) & (x0 > lo) & (x0 < hi)
    if usable is not None and usable.all():
        x = x0.astype(float, copy=True)
    else:
        x = np.quantile(data, target, axis=1)
        np.clip(x, lo, hi, out=x)
        if usable is not None:
            x = np.where(usable, x0, x)

    # Stopping rules, both well inside the documented `tol` bound: a
    # solver step below tol/10 (the superlinear contraction of both the
    # Newton step and the Illinois fallback leaves the residual error far
    # smaller still) or a bracket narrower than tol/2 (the enclosed
    # crossing is then within tol/2 of x).
    step_tol = tol * 0.1
    bracket_tol = tol * 0.5
    rows = data.shape[0]
    # Hoist the residual scaling out of the iteration loop: one pass over
    # the data matrix here replaces two per iteration (see _rows_cdf_pdf).
    inv_scale = 1.0 / (h * _SQRT2)
    scaled_data = data * inv_scale[:, None]
    pdf_scale = 1.0 / (data.shape[1] * h * _SQRT2PI)
    cdf_scale = 0.5 / data.shape[1]

    # The loop iterates all still-live rows in lockstep behind an `active`
    # mask (converged rows are frozen by np.where, costing a discarded
    # lane instead of per-iteration fancy indexing).  Once at least a
    # quarter of the live rows have converged (active <= 75%), the state
    # is compacted to the active rows, so long straggler tails
    # (near-plateau profiles grinding through bisection) iterate on tiny
    # matrices — amortised, CDF work tracks the rows that still need it.
    # Per-row arithmetic is identical in either regime, which keeps
    # single-row and batched solves bit-identical.
    out = x
    idx_map = np.arange(rows)
    active = np.ones(rows, dtype=bool)
    wbuf = np.empty_like(scaled_data)
    ebuf = np.empty_like(scaled_data)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        for _ in range(max_iter):
            n_active = int(np.count_nonzero(active))
            if n_active == 0:
                break
            if n_active * 4 <= active.shape[0] * 3:
                out[idx_map] = x
                keep = np.flatnonzero(active)
                idx_map = idx_map[keep]
                scaled_data = np.ascontiguousarray(scaled_data[keep])
                x = x[keep]
                lo, hi = lo[keep], hi[keep]
                inv_scale = inv_scale[keep]
                pdf_scale = pdf_scale[keep]
                active = np.ones(keep.shape[0], dtype=bool)
                wbuf = wbuf[: keep.shape[0]]
                ebuf = ebuf[: keep.shape[0]]
            f, dens = _rows_cdf_pdf(
                scaled_data, x * inv_scale, pdf_scale, cdf_scale, wbuf, ebuf
            )
            f -= target
            # Maintain the bracket invariant CDF(lo) <= target <= CDF(hi).
            # Frozen rows mutate their (no longer read) bracket state too —
            # cheaper than masking every update.
            below = f < 0.0
            lo = np.where(below, x, lo)
            hi = np.where(below, hi, x)
            width = hi - lo
            newton = x - f / dens
            # Reject the Newton step when it leaves the bracket or when it
            # does not outpace bisection (|2 f| > |width * pdf|, the
            # classic rtsafe guard) — a near-plateau CDF otherwise sends
            # Newton ricocheting between the plateau edges.  A vanishing
            # or invalid pdf fails both checks on its own (the step is
            # infinite or NaN), so no separate guard is needed.  Rejected
            # rows take the bracket midpoint, so progress is never worse
            # than bisection.
            ok = (
                (newton > lo)
                & (newton < hi)
                & (2.0 * np.abs(f) <= width * dens)
            )
            x_new = np.where(active, np.where(ok, newton, 0.5 * (lo + hi)), x)
            # A tiny *accepted Newton* step pins the root (near a simple
            # root the step size bounds the residual); otherwise wait for
            # the bracket to collapse.
            converged = (ok & (np.abs(x_new - x) < step_tol)) | (
                width < bracket_tol
            )
            x = x_new
            active &= ~converged
    out[idx_map] = x
    return out


def bisect_quantiles(
    data: np.ndarray,
    bandwidths: np.ndarray,
    q: float,
    *,
    tol: float = 1e-6,
    max_iter: int = 200,
) -> np.ndarray:
    """Retained reference: the pre-Newton bracketed-bisection threshold rule.

    Row-wise replication of the original ``GaussianKDE.percentile``
    (bracket expansion by ``10 h`` steps, midpoint bisection until the
    bracket is narrower than ``tol``).  Kept as the documented reference
    the Newton engine is pinned against: ``tests/test_properties.py``
    asserts ``|mixture_quantiles - bisect_quantiles| <= tol`` across random
    profiles, which is the re-pin bound of the threshold-rule change.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    data = np.ascontiguousarray(np.asarray(data, dtype=float))
    h = np.asarray(bandwidths, dtype=float)
    target = q / 100.0
    rows = data.shape[0]
    lo = data.min(axis=1) - 10.0 * h
    hi = data.max(axis=1) + 10.0 * h
    active = np.ones(rows, dtype=bool)
    for _ in range(64):
        active &= ~(_rows_cdf(data, h, lo) <= target)
        if not active.any():
            break
        lo[active] -= 10.0 * h[active]
    if active.any():
        raise ValueError("bisection bracket expansion exhausted (low side)")
    active = np.ones(rows, dtype=bool)
    for _ in range(64):
        active &= ~(_rows_cdf(data, h, hi) >= target)
        if not active.any():
            break
        hi[active] += 10.0 * h[active]
    if active.any():
        raise ValueError("bisection bracket expansion exhausted (high side)")
    active = np.ones(rows, dtype=bool)
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        below = _rows_cdf(data, h, mid) < target
        move_lo = active & below
        move_hi = active & ~below
        lo[move_lo] = mid[move_lo]
        hi[move_hi] = mid[move_hi]
        active &= ~((hi - lo) < tol)
        if not active.any():
            break
    return 0.5 * (lo + hi)


class GaussianKDE:
    """One-dimensional Gaussian kernel density estimator.

    Parameters
    ----------
    data:
        Sample of the quantity being profiled (e.g. the sums of per-stream
        standard deviations observed while the office is quiet).
    bandwidth:
        Kernel bandwidth ``h``.  If a string, one of ``"scott"`` or
        ``"silverman"``; if a float, used directly.

    Notes
    -----
    The estimated density is

    .. math:: \\hat f(x) = \\frac{1}{n h} \\sum_i K\\left(\\frac{x - x_i}{h}\\right)

    with ``K`` the standard normal pdf, exactly the form in the paper's
    Section IV-C1.
    """

    def __init__(
        self,
        data: Iterable[float],
        bandwidth: Union[str, float] = "scott",
    ) -> None:
        data = np.asarray(list(data) if not isinstance(data, np.ndarray) else data,
                          dtype=float).ravel()
        if data.size == 0:
            raise ValueError("GaussianKDE requires at least one data point")
        self._data = data
        if isinstance(bandwidth, str):
            if bandwidth == "scott":
                self._h = scott_bandwidth(data)
            elif bandwidth == "silverman":
                self._h = silverman_bandwidth(data)
            else:
                raise ValueError(f"unknown bandwidth rule: {bandwidth!r}")
        else:
            h = float(bandwidth)
            if h <= 0:
                raise ValueError("bandwidth must be positive")
            self._h = h

    # ------------------------------------------------------------------ #
    @property
    def data(self) -> np.ndarray:
        """The training sample (read-only view)."""
        return self._data

    @property
    def bandwidth(self) -> float:
        """The kernel bandwidth in use."""
        return self._h

    @property
    def n(self) -> int:
        """Number of training points."""
        return int(self._data.shape[0])

    # ------------------------------------------------------------------ #
    def pdf(self, x: Union[float, np.ndarray]) -> np.ndarray:
        """Evaluate the estimated density at ``x`` (scalar or array)."""
        x = np.atleast_1d(np.asarray(x, dtype=float))
        z = (x[:, None] - self._data[None, :]) / self._h
        dens = np.exp(-0.5 * z ** 2).sum(axis=1)
        dens /= self.n * self._h * np.sqrt(2.0 * np.pi)
        return dens

    def cdf(self, x: Union[float, np.ndarray]) -> np.ndarray:
        """Evaluate the estimated cumulative distribution at ``x``."""
        x = np.atleast_1d(np.asarray(x, dtype=float))
        z = (x[:, None] - self._data[None, :]) / self._h
        return 0.5 * (1.0 + erf(z / np.sqrt(2.0))).mean(axis=1)

    def percentile(
        self,
        q: float,
        *,
        x0: Optional[float] = None,
        tol: float = 1e-6,
        max_iter: int = 100,
    ) -> float:
        """Return the value below which ``q`` percent of the mass lies.

        Parameters
        ----------
        q:
            Percentile in ``[0, 100]``.  Algorithm 1 queries the
            ``(100 - alpha)``-th percentile as its anomaly threshold.
        x0:
            Optional warm-start guess (e.g. the previous threshold of a
            profile chain); see :func:`mixture_quantiles`.

        Delegates to the shared safeguarded-Newton engine
        (:func:`mixture_quantiles`) with this KDE as a single profile row,
        so the result is bit-identical to solving the same profile inside
        any lockstep batch.
        """
        x0_rows = None if x0 is None else np.asarray([x0], dtype=float)
        return float(
            mixture_quantiles(
                self._data[None, :],
                np.asarray([self._h]),
                q,
                x0=x0_rows,
                tol=tol,
                max_iter=max_iter,
            )[0]
        )

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` samples from the estimated density.

        ``rng`` is required: library code never falls back to a silently
        seeded global generator, so every draw is attributable to an
        explicit seed stream.
        """
        if rng is None:
            raise TypeError(
                "GaussianKDE.sample requires an explicit numpy Generator; "
                "pass np.random.default_rng(seed) from the call site"
            )
        centers = rng.choice(self._data, size=size, replace=True)
        return centers + rng.normal(0.0, self._h, size=size)

    def updated(self, new_data: Iterable[float], drop_oldest: int = 0) -> "GaussianKDE":
        """Return a new KDE with ``new_data`` appended.

        The MD module's profile update (Section IV-C3) appends a batch of
        recent measurements while removing the ``drop_oldest`` oldest ones so
        the profile tracks the slowly varying radio environment.
        """
        new_data = np.asarray(list(new_data), dtype=float).ravel()
        kept = self._data[drop_oldest:] if drop_oldest > 0 else self._data
        combined = np.concatenate([kept, new_data])
        if combined.size == 0:
            raise ValueError("profile update would leave no data")
        return GaussianKDE(combined, bandwidth="scott")

"""Correlation analysis of stream features.

The paper's appendix (Figure 11) shows the Pearson correlation between the
per-stream variance features over the labelled samples: streams between
physically close devices react similarly to a moving body.  This module
computes that matrix and related summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["correlation_matrix", "CorrelationResult", "most_correlated_pairs"]


@dataclass(frozen=True)
class CorrelationResult:
    """A labelled correlation matrix.

    Attributes
    ----------
    names:
        Column labels (e.g. stream ids like ``"d1-d2"``).
    matrix:
        Symmetric Pearson correlation matrix; constant columns yield zeros
        off the diagonal and 1.0 on the diagonal.
    """

    names: Tuple[str, ...]
    matrix: np.ndarray

    def value(self, a: str, b: str) -> float:
        """Correlation between the two named columns."""
        ia, ib = self.names.index(a), self.names.index(b)
        return float(self.matrix[ia, ib])


def correlation_matrix(X: np.ndarray, names: Sequence[str]) -> CorrelationResult:
    """Pearson correlation between the columns of ``X``.

    Parameters
    ----------
    X:
        Matrix of shape ``(n_samples, n_columns)`` — e.g. the variance
        feature of every stream, over all labelled samples.
    names:
        One label per column.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    if X.shape[1] != len(names):
        raise ValueError("names length must match number of columns")
    if X.shape[0] < 2:
        raise ValueError("need at least two samples to compute correlations")
    with np.errstate(invalid="ignore"):
        corr = np.corrcoef(X, rowvar=False)
    corr = np.atleast_2d(corr)
    corr = np.nan_to_num(corr, nan=0.0)
    np.fill_diagonal(corr, 1.0)
    return CorrelationResult(names=tuple(names), matrix=corr)


def most_correlated_pairs(
    result: CorrelationResult, top_k: int = 10
) -> List[Tuple[str, str, float]]:
    """Return the ``top_k`` most correlated distinct column pairs.

    Useful for checking the paper's qualitative claim that streams between
    nearby devices co-vary.
    """
    n = len(result.names)
    pairs: List[Tuple[str, str, float]] = []
    for i in range(n):
        for j in range(i + 1, n):
            pairs.append(
                (result.names[i], result.names[j], float(result.matrix[i, j]))
            )
    pairs.sort(key=lambda t: abs(t[2]), reverse=True)
    return pairs[:top_k]

"""Relative mutual information (RMI) feature-importance analysis.

The paper's appendix ranks RE features by their *relative mutual
information* with the class label:

.. math:: RMI(x, y) = \\frac{H(x) - H(x | y)}{H(x)}

where the feature distribution is quantised into 256 linearly spaced bins
between its minimum and maximum (Section Appendix-A).  This module
implements exactly that estimator, plus the per-stream aggregation used to
draw the importance heat map (Figure 12) and the top-k table (Table V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "quantize",
    "marginal_entropy",
    "conditional_entropy",
    "relative_mutual_information",
    "rank_features_by_rmi",
    "FeatureImportance",
]


def quantize(x: Sequence[float], bins: int = 256) -> np.ndarray:
    """Quantise a feature into ``bins`` linearly spaced bins over its range.

    Constant features map every sample to bin 0.
    """
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        raise ValueError("cannot quantise an empty feature")
    if bins < 1:
        raise ValueError("bins must be >= 1")
    if not np.all(np.isfinite(x)):
        # NaN propagates through min()/max() and ``hi <= lo`` is False for
        # NaN bounds, so linspace would produce NaN edges and digitize
        # garbage bin indices — a silently wrong RMI.  Infinities degenerate
        # the linear grid the same way.  Fail loudly instead.
        raise ValueError(
            "cannot quantise a feature with non-finite values (NaN/inf); "
            "clean or drop the affected samples first"
        )
    lo, hi = float(x.min()), float(x.max())
    if hi <= lo:
        return np.zeros(x.shape[0], dtype=int)
    edges = np.linspace(lo, hi, bins + 1)
    idx = np.digitize(x, edges[1:-1], right=False)
    return idx.astype(int)


def _entropy_from_counts(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def marginal_entropy(x: Sequence[float], bins: int = 256) -> float:
    """Shannon entropy (bits) of the quantised feature distribution."""
    q = quantize(x, bins)
    _, counts = np.unique(q, return_counts=True)
    return _entropy_from_counts(counts)


def conditional_entropy(x: Sequence[float], y: Sequence, bins: int = 256) -> float:
    """Entropy of the quantised feature conditioned on the class label."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    if x.shape[0] != y.shape[0]:
        raise ValueError("x and y have different lengths")
    q = quantize(x, bins)
    total = x.shape[0]
    h = 0.0
    for cls in np.unique(y):
        mask = y == cls
        weight = mask.sum() / total
        _, counts = np.unique(q[mask], return_counts=True)
        h += weight * _entropy_from_counts(counts)
    return float(h)


def relative_mutual_information(
    x: Sequence[float], y: Sequence, bins: int = 256
) -> float:
    """RMI of one feature with the class label, in ``[0, 1]``.

    Returns 0.0 for constant features (whose marginal entropy is zero), which
    by definition carry no class information.
    """
    hx = marginal_entropy(x, bins)
    if hx <= 0.0:
        return 0.0
    hxy = conditional_entropy(x, y, bins)
    rmi = (hx - hxy) / hx
    # Guard against tiny negative values from floating-point noise.
    return float(min(max(rmi, 0.0), 1.0))


@dataclass(frozen=True)
class FeatureImportance:
    """One feature's RMI score, as listed in the paper's Table V."""

    name: str
    rmi: float


def rank_features_by_rmi(
    X: np.ndarray,
    y: Sequence,
    feature_names: Sequence[str],
    *,
    bins: int = 256,
    drop_correlated_above: float = None,
    drop_uncorrelated_below: float = None,
) -> List[FeatureImportance]:
    """Rank all features by RMI with the class label, descending.

    Parameters
    ----------
    X:
        Sample matrix of shape ``(n_samples, n_features)``.
    y:
        Class labels.
    feature_names:
        One name per column of ``X``.
    bins:
        Quantisation bins (the paper uses 256).
    drop_correlated_above:
        If set, greedily drop features whose absolute Pearson correlation
        with an already-kept feature exceeds this threshold (the paper
        removes highly correlated features before ranking).
    drop_uncorrelated_below:
        If set, drop features whose maximum absolute correlation with any
        other feature is below this threshold (the paper also removes
        uncorrelated — i.e. pure-noise — features).
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    y = np.asarray(y)
    if X.shape[1] != len(feature_names):
        raise ValueError("feature_names length must match number of columns")

    keep = list(range(X.shape[1]))
    if drop_correlated_above is not None or drop_uncorrelated_below is not None:
        with np.errstate(invalid="ignore"):
            corr = np.corrcoef(X, rowvar=False)
        corr = np.nan_to_num(corr, nan=0.0)
        if drop_uncorrelated_below is not None and X.shape[1] > 1:
            off_diag = np.abs(corr - np.eye(X.shape[1]))
            keep = [i for i in keep if off_diag[i].max() >= drop_uncorrelated_below]
        if drop_correlated_above is not None:
            selected: List[int] = []
            for i in keep:
                if all(abs(corr[i, j]) <= drop_correlated_above for j in selected):
                    selected.append(i)
            keep = selected

    ranked = [
        FeatureImportance(
            name=feature_names[i],
            rmi=relative_mutual_information(X[:, i], y, bins=bins),
        )
        for i in keep
    ]
    ranked.sort(key=lambda fi: fi.rmi, reverse=True)
    return ranked


def stream_importance(
    ranked: Sequence[FeatureImportance],
) -> Dict[Tuple[str, str], float]:
    """Aggregate per-feature RMI scores into per-stream importance.

    Feature names follow the ``"d<i>-d<j>-<kind>"`` convention; the per-stream
    score is the maximum RMI among that stream's features, which is what the
    Figure 12 heat map visualises (a stream is as important as its most
    informative feature).
    """
    result: Dict[Tuple[str, str], float] = {}
    for fi in ranked:
        parts = fi.name.rsplit("-", 1)
        if len(parts) != 2:
            continue
        stream = parts[0]
        ends = stream.split("-")
        if len(ends) != 2:
            continue
        key = (ends[0], ends[1])
        result[key] = max(result.get(key, 0.0), fi.rmi)
    return result

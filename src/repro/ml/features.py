"""Window features used by the Radio Environment classifier.

For every RSSI stream, FADEWICH computes three features over the window
``[t1, t1 + t_delta]`` at the start of a variation window (paper Section
IV-D1):

* the **variance** of the window,
* the **entropy** of the window's frequency-distribution histogram,
* the **autocorrelation** of the window at a fixed lag.

This module implements those features plus the per-sample feature-vector
assembly (features of all streams concatenated in a stable order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "window_variance",
    "window_entropy",
    "window_autocorrelation",
    "stream_features",
    "FeatureExtractor",
]


def window_variance(window: Sequence[float]) -> float:
    """Population variance of the window (paper: sigma^2 = sum (r - mu)^2 / n)."""
    window = np.asarray(window, dtype=float)
    if window.size == 0:
        raise ValueError("variance of an empty window is undefined")
    return float(np.var(window))


def window_entropy(window: Sequence[float], bins: int = 16) -> float:
    """Shannon entropy (nats) of the histogram of the window values.

    The paper computes the entropy of the frequency-distribution histogram of
    the window; the number of histogram bins is an implementation parameter.
    Constant windows have zero entropy.
    """
    window = np.asarray(window, dtype=float)
    if window.size == 0:
        raise ValueError("entropy of an empty window is undefined")
    if bins < 1:
        raise ValueError("bins must be >= 1")
    # np.histogram cannot split a denormal-width value range into multiple
    # finite bins; such a window is constant for any practical purpose and
    # has zero entropy (one occupied bin), like an exactly-constant one.
    spread = float(window.max() - window.min())
    with np.errstate(over="ignore"):
        if spread > 0.0 and not np.isfinite(np.float64(bins) / spread):
            return 0.0
    counts, _ = np.histogram(window, bins=bins)
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log(p)).sum())


def window_autocorrelation(window: Sequence[float], lag: int = 1) -> float:
    """Sample autocorrelation of the window at the given lag.

    Follows the paper's definition

    .. math:: R(k) = \\frac{1}{(n - k)\\sigma^2}\\sum_j (r_j - \\mu)(r_{j+k} - \\mu)

    A window with zero variance (all samples identical) returns 1.0 by
    convention: a constant signal is perfectly self-similar.
    """
    window = np.asarray(window, dtype=float)
    n = window.size
    if n == 0:
        raise ValueError("autocorrelation of an empty window is undefined")
    if lag < 0:
        raise ValueError("lag must be non-negative")
    if lag >= n:
        return 0.0
    mu = window.mean()
    var = np.var(window)
    if var <= 1e-15:
        return 1.0
    centered = window - mu
    num = float((centered[: n - lag] * centered[lag:]).sum())
    return num / ((n - lag) * var)


def stream_features(
    window: Sequence[float], *, entropy_bins: int = 16, ac_lag: int = 1
) -> Tuple[float, float, float]:
    """Return ``(variance, entropy, autocorrelation)`` for one stream window."""
    return (
        window_variance(window),
        window_entropy(window, bins=entropy_bins),
        window_autocorrelation(window, lag=ac_lag),
    )


@dataclass(frozen=True)
class FeatureExtractor:
    """Assemble fixed-order feature vectors from per-stream RSSI windows.

    Parameters
    ----------
    stream_ids:
        The ordered list of stream identifiers (e.g. ``("d1-d2", "d1-d3", ...)``).
        The ordering fixes the layout of the output feature vector so that
        training and online samples are always aligned.
    entropy_bins:
        Histogram bins used for the entropy feature.
    ac_lag:
        Lag of the autocorrelation feature.
    """

    stream_ids: Tuple[str, ...]
    entropy_bins: int = 16
    ac_lag: int = 1

    def __post_init__(self) -> None:
        if len(self.stream_ids) == 0:
            raise ValueError("FeatureExtractor requires at least one stream")
        if len(set(self.stream_ids)) != len(self.stream_ids):
            raise ValueError("stream_ids must be unique")

    @property
    def n_features(self) -> int:
        """Total length of the feature vector: 3 features per stream."""
        return 3 * len(self.stream_ids)

    def feature_names(self) -> List[str]:
        """Names like ``"d1-d2-var"``, matching the paper's Table V notation."""
        names: List[str] = []
        for sid in self.stream_ids:
            names.extend([f"{sid}-var", f"{sid}-ent", f"{sid}-ac"])
        return names

    def extract(self, windows: Dict[str, Sequence[float]]) -> np.ndarray:
        """Build one sample's feature vector from per-stream windows.

        Parameters
        ----------
        windows:
            Mapping from stream id to the RSSI measurements observed in
            ``[t1, t1 + t_delta]`` for that stream.  Every stream in
            ``stream_ids`` must be present.
        """
        values: List[float] = []
        for sid in self.stream_ids:
            if sid not in windows:
                raise KeyError(f"missing window for stream {sid!r}")
            var, ent, ac = stream_features(
                windows[sid], entropy_bins=self.entropy_bins, ac_lag=self.ac_lag
            )
            values.extend([var, ent, ac])
        return np.asarray(values, dtype=float)

    def extract_many(
        self, samples: Sequence[Dict[str, Sequence[float]]]
    ) -> np.ndarray:
        """Vectorise :meth:`extract` over a sequence of samples."""
        if len(samples) == 0:
            return np.empty((0, self.n_features))
        return np.vstack([self.extract(s) for s in samples])

"""Classification and detection metrics.

Provides the metrics the paper reports:

* precision / recall / F-measure for the Movement Detection module
  (Figure 7, Table III),
* classification accuracy and confusion matrices for the Radio Environment
  classifier (Figure 8),
* a small container for TP/FP/FN counts of a detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

__all__ = [
    "DetectionCounts",
    "precision",
    "recall",
    "f_measure",
    "accuracy",
    "confusion_matrix",
]


@dataclass(frozen=True)
class DetectionCounts:
    """True-positive / false-positive / false-negative counts of a detector.

    The MD module is scored per-event: a variation window overlapping a true
    (ground-truth) movement window is a TP, a variation window overlapping no
    true window is an FP, and a true window covered by no variation window is
    an FN (paper Section V-A).
    """

    tp: int
    fp: int
    fn: int

    def __post_init__(self) -> None:
        if self.tp < 0 or self.fp < 0 or self.fn < 0:
            raise ValueError("counts must be non-negative")

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 0.0 when no positives were predicted."""
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 0.0 when there were no true events."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f_measure(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0

    @property
    def total_events(self) -> int:
        """Number of ground-truth events (TP + FN)."""
        return self.tp + self.fn

    def rates(self) -> Dict[str, float]:
        """TP/FP/FN as fractions of the total decisions, as in Table III.

        Table III reports each count divided by the total number of
        TP + FP + FN decisions, alongside the absolute counts.
        """
        total = self.tp + self.fp + self.fn
        if total == 0:
            return {"tp": 0.0, "fp": 0.0, "fn": 0.0}
        return {
            "tp": self.tp / total,
            "fp": self.fp / total,
            "fn": self.fn / total,
        }

    def __add__(self, other: "DetectionCounts") -> "DetectionCounts":
        return DetectionCounts(
            self.tp + other.tp, self.fp + other.fp, self.fn + other.fn
        )


def precision(tp: int, fp: int) -> float:
    """Precision from raw counts."""
    return DetectionCounts(tp, fp, 0).precision


def recall(tp: int, fn: int) -> float:
    """Recall from raw counts."""
    return DetectionCounts(tp, 0, fn).recall


def f_measure(tp: int, fp: int, fn: int) -> float:
    """F-measure from raw counts, as plotted in Figure 7."""
    return DetectionCounts(tp, fp, fn).f_measure


def accuracy(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of predictions equal to the true labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape[0] != y_pred.shape[0]:
        raise ValueError("y_true and y_pred have different lengths")
    if y_true.shape[0] == 0:
        raise ValueError("accuracy of an empty prediction set is undefined")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: Sequence, y_pred: Sequence, labels: Sequence = None
) -> np.ndarray:
    """Confusion matrix ``M[i, j]`` = count of true label ``i`` predicted ``j``.

    Parameters
    ----------
    labels:
        Label ordering for the matrix axes.  Defaults to the sorted union of
        labels appearing in either vector.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape[0] != y_pred.shape[0]:
        raise ValueError("y_true and y_pred have different lengths")
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    index = {lab: i for i, lab in enumerate(labels.tolist())}
    mat = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        mat[index[t], index[p]] += 1
    return mat

"""Feature scaling utilities.

SVMs are sensitive to feature scale; RE feature vectors mix variances (dB^2,
potentially large), entropies (nats, small) and autocorrelations (unitless,
in [-1, 1]).  A standard (z-score) scaler fitted on the training fold and
applied to both folds keeps the classifier well conditioned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler"]


@dataclass
class StandardScaler:
    """Per-feature z-score normalisation: ``(x - mean) / std``.

    Features with zero variance are left centred but unscaled (divide by 1)
    so constant features do not produce NaNs.
    """

    mean_: Optional[np.ndarray] = field(default=None, repr=False)
    scale_: Optional[np.ndarray] = field(default=None, repr=False)

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[0] == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std <= 1e-15] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return X * self.scale_ + self.mean_


@dataclass
class MinMaxScaler:
    """Per-feature rescaling to ``[0, 1]`` (constant features map to 0)."""

    min_: Optional[np.ndarray] = field(default=None, repr=False)
    range_: Optional[np.ndarray] = field(default=None, repr=False)

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[0] == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.min_ = X.min(axis=0)
        rng = X.max(axis=0) - self.min_
        rng[rng <= 1e-15] = 1.0
        self.range_ = rng
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return (X - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

"""Multi-class SVM classification via one-vs-one voting.

FADEWICH's RE module distinguishes k+1 classes (``w0`` = "somebody entered
the office", ``w1..wk`` = "the user at workstation i left").  The binary SMO
solver in :mod:`repro.ml.svm` is composed into a multi-class classifier with
the one-vs-one strategy used by libsvm: one binary machine per unordered
class pair, predictions by majority vote with ties broken by the summed
decision-function margins.

With ``kernel="precomputed"`` the classifier fits on a square training Gram
matrix: each pairwise machine trains on the index-sliced sub-Gram of its
two classes' samples, and ``predict`` takes the ``(m, n_train)`` Gram rows
between the query points and the full training set, slicing each pair's
columns internally.  Slice-stable kernels make this bit-identical to direct
fits on the corresponding sample rows (see :mod:`repro.ml.kernels`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Optional, Tuple

import numpy as np

from .kernels import Kernel
from .svm import BinarySVC, SVMNotFittedError

__all__ = ["OneVsOneSVC"]


@dataclass
class OneVsOneSVC:
    """One-vs-one multi-class support vector classifier.

    Parameters mirror :class:`~repro.ml.svm.BinarySVC` and are forwarded to
    every pairwise machine.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.array([[0.0], [0.1], [5.0], [5.1], [10.0], [10.1]])
    >>> y = np.array([0, 0, 1, 1, 2, 2])
    >>> clf = OneVsOneSVC(C=10.0, kernel="rbf").fit(X, y)
    >>> clf.predict([[0.05], [5.05], [9.9]]).tolist()
    [0, 1, 2]
    """

    C: float = 1.0
    kernel: object = "rbf"
    gamma: Optional[float] = None
    tol: float = 1e-3
    max_passes: int = 5
    max_iter: int = 200
    random_state: Optional[int] = None
    #: Forwarded to every pairwise machine; ``False`` selects the retained
    #: original SMO formulation (see :class:`~repro.ml.svm.BinarySVC`).
    error_cache: bool = True

    classes_: np.ndarray = field(default=None, repr=False)
    estimators_: Dict[Tuple[int, int], BinarySVC] = field(
        default_factory=dict, repr=False
    )
    pair_indices_: Dict[Tuple[int, int], np.ndarray] = field(
        default_factory=dict, repr=False
    )
    _precomputed: bool = field(default=False, repr=False)
    _n_fit: int = field(default=0, repr=False)
    _fitted: bool = field(default=False, repr=False)

    def _make_binary(self) -> BinarySVC:
        return BinarySVC(
            C=self.C,
            kernel=self.kernel,
            gamma=self.gamma,
            tol=self.tol,
            max_passes=self.max_passes,
            max_iter=self.max_iter,
            random_state=self.random_state,
            error_cache=self.error_cache,
        )

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        warm_init: Optional[Dict[Tuple[object, object], Tuple[np.ndarray, float]]] = None,
    ) -> "OneVsOneSVC":
        """Fit one binary SVM per unordered pair of classes present in ``y``.

        With ``kernel="precomputed"``, ``X`` is the square training Gram
        matrix; each pairwise machine fits on its classes' sub-Gram view.

        ``warm_init`` optionally warm-starts the pairwise SMO solvers: a
        mapping from ``(class_a, class_b)`` *label* pairs (sorted order) to
        the ``(alpha, b)`` dual state of a fit on a training-set prefix —
        see :meth:`pair_states` and :meth:`BinarySVC.fit`.  Keys are label
        values, not class indices, so the mapping stays valid when a prefix
        contained fewer classes.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")
        precomputed = (
            not isinstance(self.kernel, Kernel)
            and str(self.kernel) == "precomputed"
        )
        if precomputed and X.shape[0] != X.shape[1]:
            raise ValueError(
                "kernel='precomputed' requires a square Gram matrix, "
                f"got shape {X.shape}"
            )
        self._precomputed = precomputed
        self._n_fit = X.shape[0]
        self.classes_ = np.unique(y)
        self.estimators_ = {}
        self.pair_indices_ = {}
        for a, b in combinations(range(self.classes_.shape[0]), 2):
            ca, cb = self.classes_[a], self.classes_[b]
            mask = (y == ca) | (y == cb)
            init = None
            if warm_init is not None:
                init = warm_init.get((ca, cb))
            est = self._make_binary()
            if precomputed:
                idx = np.flatnonzero(mask)
                self.pair_indices_[(a, b)] = idx
                est.fit(X[np.ix_(idx, idx)], y[idx], init=init)
            else:
                est.fit(X[mask], y[mask], init=init)
            self.estimators_[(a, b)] = est
        self._fitted = True
        return self

    def pair_states(self) -> Dict[Tuple[object, object], Tuple[np.ndarray, float]]:
        """Dual state of every pairwise machine, keyed by label pair.

        Returns ``{(class_a, class_b): (alpha, intercept)}`` suitable as
        ``warm_init`` for a fit on a training set this one is a *prefix*
        of: each pair's samples keep their relative order in the larger
        set, so the alphas line up with the prefix rows and the remaining
        entries start at zero (dual-feasible).
        """
        if not self._fitted:
            raise SVMNotFittedError("call fit() before pair_states()")
        states: Dict[Tuple[object, object], Tuple[np.ndarray, float]] = {}
        for (a, b), est in self.estimators_.items():
            if est.alpha_ is None:
                continue
            states[(self.classes_[a], self.classes_[b])] = (
                est.alpha_, est.intercept_
            )
        return states

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict by one-vs-one majority vote.

        Ties are broken by the accumulated absolute decision margin each
        class obtained across its pairwise contests.  With
        ``kernel="precomputed"``, ``X`` holds the Gram rows between the
        query points and the full training set (shape ``(m, n_train)``).
        """
        if not self._fitted:
            raise SVMNotFittedError("call fit() before predict()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if self._precomputed and X.shape[1] != self._n_fit:
            raise ValueError(
                f"precomputed predict needs Gram rows with {self._n_fit} "
                f"training columns, got {X.shape[1]}"
            )
        n = X.shape[0]
        n_classes = self.classes_.shape[0]
        if n_classes == 1:
            return np.full(n, self.classes_[0])

        votes = np.zeros((n, n_classes))
        margins = np.zeros((n, n_classes))
        for (a, b), est in self.estimators_.items():
            ca, cb = self.classes_[a], self.classes_[b]
            X_pair = X[:, self.pair_indices_[(a, b)]] if self._precomputed else X
            pred = est.predict(X_pair)
            if est.classes_.shape[0] == 2:
                score = est.decision_function(X_pair)
            else:
                score = np.zeros(n)
            for cls_idx, cls in ((a, ca), (b, cb)):
                won = pred == cls
                votes[won, cls_idx] += 1
                margins[won, cls_idx] += np.abs(score[won])

        # lexicographic argmax on (votes, margins)
        best = np.zeros(n, dtype=int)
        for i in range(n):
            order = np.lexsort((margins[i], votes[i]))
            best[i] = order[-1]
        return self.classes_[best]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy of :meth:`predict` on ``(X, y)``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

"""Multi-class SVM classification via one-vs-one voting.

FADEWICH's RE module distinguishes k+1 classes (``w0`` = "somebody entered
the office", ``w1..wk`` = "the user at workstation i left").  The binary SMO
solver in :mod:`repro.ml.svm` is composed into a multi-class classifier with
the one-vs-one strategy used by libsvm: one binary machine per unordered
class pair, predictions by majority vote with ties broken by the summed
decision-function margins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Optional, Tuple

import numpy as np

from .svm import BinarySVC, SVMNotFittedError

__all__ = ["OneVsOneSVC"]


@dataclass
class OneVsOneSVC:
    """One-vs-one multi-class support vector classifier.

    Parameters mirror :class:`~repro.ml.svm.BinarySVC` and are forwarded to
    every pairwise machine.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.array([[0.0], [0.1], [5.0], [5.1], [10.0], [10.1]])
    >>> y = np.array([0, 0, 1, 1, 2, 2])
    >>> clf = OneVsOneSVC(C=10.0, kernel="rbf").fit(X, y)
    >>> clf.predict([[0.05], [5.05], [9.9]]).tolist()
    [0, 1, 2]
    """

    C: float = 1.0
    kernel: object = "rbf"
    gamma: Optional[float] = None
    tol: float = 1e-3
    max_passes: int = 5
    max_iter: int = 200
    random_state: Optional[int] = None

    classes_: np.ndarray = field(default=None, repr=False)
    estimators_: Dict[Tuple[int, int], BinarySVC] = field(
        default_factory=dict, repr=False
    )
    _fitted: bool = field(default=False, repr=False)

    def _make_binary(self) -> BinarySVC:
        return BinarySVC(
            C=self.C,
            kernel=self.kernel,
            gamma=self.gamma,
            tol=self.tol,
            max_passes=self.max_passes,
            max_iter=self.max_iter,
            random_state=self.random_state,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OneVsOneSVC":
        """Fit one binary SVM per unordered pair of classes present in ``y``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")
        self.classes_ = np.unique(y)
        self.estimators_ = {}
        for a, b in combinations(range(self.classes_.shape[0]), 2):
            ca, cb = self.classes_[a], self.classes_[b]
            mask = (y == ca) | (y == cb)
            est = self._make_binary()
            est.fit(X[mask], y[mask])
            self.estimators_[(a, b)] = est
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict by one-vs-one majority vote.

        Ties are broken by the accumulated absolute decision margin each
        class obtained across its pairwise contests.
        """
        if not self._fitted:
            raise SVMNotFittedError("call fit() before predict()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n = X.shape[0]
        n_classes = self.classes_.shape[0]
        if n_classes == 1:
            return np.full(n, self.classes_[0])

        votes = np.zeros((n, n_classes))
        margins = np.zeros((n, n_classes))
        for (a, b), est in self.estimators_.items():
            ca, cb = self.classes_[a], self.classes_[b]
            pred = est.predict(X)
            if est.classes_.shape[0] == 2:
                score = est.decision_function(X)
            else:
                score = np.zeros(n)
            for cls_idx, cls in ((a, ca), (b, cb)):
                won = pred == cls
                votes[won, cls_idx] += 1
                margins[won, cls_idx] += np.abs(score[won])

        # lexicographic argmax on (votes, margins)
        best = np.zeros(n, dtype=int)
        for i in range(n):
            order = np.lexsort((margins[i], votes[i]))
            best[i] = order[-1]
        return self.classes_[best]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy of :meth:`predict` on ``(X, y)``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

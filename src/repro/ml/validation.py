"""Cross-validation utilities.

The paper evaluates the RE classifier with 5-fold cross-validation repeated
10 times to smooth out the randomness of the split (Section VII-B), and
plots a learning curve over increasing training-set sizes.  This module
provides plain and stratified k-fold splitters plus the repeated
learning-curve machinery, without any external ML dependency.

Shared-Gram learning curves
---------------------------

Within one (repeat, fold) of the Figure 8 protocol, every training subset
of size ``s`` is a *prefix* of the same shuffled training fold — so the
Gram matrices of all sizes are leading principal submatrices of a single
per-fold kernel matrix, and all test predictions read from one cached
``(n_test, n_train)`` Gram block.  :class:`SVCFoldFitter` exploits exactly
that: ``learning_curve`` hands it the shuffled fold once
(:meth:`~SVCFoldFitter.begin_fold`), and every per-size fit becomes an
index-sliced ``kernel="precomputed"`` fit.  Because the kernels are
slice-stable (:mod:`repro.ml.kernels`), the shared-Gram path is
bit-identical to the retained per-fit reference
(``SVCFoldFitter(shared_gram=False)``), which computes a fresh kernel per
fit — the equivalence contract ``benchmarks/test_analysis_throughput.py``
gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .kernels import Kernel, make_kernel, scale_gamma
from .metrics import accuracy
from .multiclass import OneVsOneSVC
from .scaling import StandardScaler

__all__ = [
    "kfold_indices",
    "stratified_fold_assignments",
    "stratified_kfold_indices",
    "train_test_split",
    "cross_val_scores",
    "learning_curve",
    "LearningCurveResult",
    "SVCFoldFitter",
]


def kfold_indices(
    n_samples: int, n_folds: int, rng: Optional[np.random.Generator] = None
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` pairs for a shuffled k-fold split."""
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    if n_samples < n_folds:
        raise ValueError("more folds than samples")
    if rng is None:
        rng = np.random.default_rng()
    perm = rng.permutation(n_samples)
    folds = np.array_split(perm, n_folds)
    for i in range(n_folds):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(n_folds) if j != i])
        yield train_idx, test_idx


def stratified_fold_assignments(
    y: Sequence, n_folds: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Stratified fold membership as one integer array.

    Returns ``assignments`` with ``assignments[i]`` the fold of sample
    ``i``: per class, a shuffled round-robin spread over the folds.  This is
    the columnar form of the stratified split — fold ``k``'s test set is
    ``assignments == k`` — used by the vectorised cross-validation paths;
    :func:`stratified_kfold_indices` derives its index pairs from it, so
    both consume the random stream identically.

    Classes with fewer members than folds are spread as evenly as possible;
    a class may then be absent from some training folds, matching what
    happens with the paper's small event counts.
    """
    y = np.asarray(y)
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    if y.shape[0] < n_folds:
        raise ValueError("more folds than samples")
    if rng is None:
        rng = np.random.default_rng()
    assignments = np.empty(y.shape[0], dtype=np.intp)
    for cls in np.unique(y):
        idx = rng.permutation(np.flatnonzero(y == cls))
        assignments[idx] = np.arange(idx.shape[0]) % n_folds
    return assignments


def stratified_kfold_indices(
    y: Sequence, n_folds: int, rng: Optional[np.random.Generator] = None
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield k-fold splits preserving per-class proportions.

    Index pairs are derived from :func:`stratified_fold_assignments`
    (train and test indices both ascending, as before).
    """
    assignments = stratified_fold_assignments(y, n_folds, rng)
    for i in range(n_folds):
        test_mask = assignments == i
        yield (
            np.flatnonzero(~test_mask).astype(int),
            np.flatnonzero(test_mask).astype(int),
        )


def train_test_split(
    n_samples: int,
    test_fraction: float = 0.2,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(train_idx, test_idx)`` for a single shuffled split."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if rng is None:
        rng = np.random.default_rng()
    perm = rng.permutation(n_samples)
    n_test = max(1, int(round(test_fraction * n_samples)))
    n_test = min(n_test, n_samples - 1)
    return perm[n_test:], perm[:n_test]


def cross_val_scores(
    make_estimator: Callable[[], object],
    X: np.ndarray,
    y: Sequence,
    n_folds: int = 5,
    *,
    stratified: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Accuracy of a freshly constructed estimator on each CV fold.

    ``make_estimator`` must return an unfitted object exposing ``fit`` and
    ``predict`` (e.g. a lambda constructing :class:`~repro.ml.multiclass.OneVsOneSVC`).
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    y = np.asarray(y)
    splitter = (
        stratified_kfold_indices(y, n_folds, rng)
        if stratified
        else kfold_indices(X.shape[0], n_folds, rng)
    )
    scores = []
    for train_idx, test_idx in splitter:
        est = make_estimator()
        est.fit(X[train_idx], y[train_idx])
        scores.append(accuracy(y[test_idx], est.predict(X[test_idx])))
    return np.asarray(scores)


@dataclass
class SVCFoldFitter:
    """Per-fold learning-curve fitter for (optionally scaled) SVC stacks.

    A *fold fitter* is the per-fold strategy object ``learning_curve``
    drives instead of a plain estimator factory: ``begin_fold`` receives
    the whole shuffled training fold (plus the test fold) once, and
    ``fit_predict`` then scores one prefix size.  Any object with those two
    methods works; this implementation covers the SVC stack of the paper
    (standard scaling + one-vs-one SMO machines).

    Parameters mirror :class:`~repro.ml.multiclass.OneVsOneSVC`; ``scale``
    prepends a :class:`~repro.ml.scaling.StandardScaler` fitted on the full
    training fold, and ``gamma=None`` resolves the RBF/poly coefficient
    with the shared ``"scale"`` heuristic on the (scaled) training fold —
    one preprocessing and one kernel per fold, the invariants that make the
    Gram matrix shareable across training sizes.

    With ``shared_gram=True`` (the fast path), ``begin_fold`` computes one
    train x train and one test x train Gram block; every per-size fit is an
    index-sliced ``kernel="precomputed"`` fit and every prediction reads
    cached test-row columns.  With ``shared_gram=False`` (the retained
    reference), each size fits directly on the sample rows with the same
    fold-level kernel object — bit-identical results, one fresh Gram per
    fit.

    ``warm_start`` exploits the same prefix structure on the *solver* side:
    each pairwise SMO machine of size ``s`` is initialised from the dual
    state of the previous (smaller) size's fit (zero-padded alphas remain
    dual-feasible because a pair's samples keep their relative order across
    prefixes).  Warm-started solves converge to a KKT point of the same
    ``tol`` quality in far fewer steps, but generally a *different* one
    within that tolerance — so ``warm_start=False`` is the configuration
    whose scores are bit-identical across ``shared_gram`` modes, and the
    default fast path (both flags on) is pinned by the golden tests
    instead.
    """

    C: float = 1.0
    kernel: object = "rbf"
    gamma: Optional[float] = None
    tol: float = 1e-3
    max_passes: int = 5
    max_iter: int = 200
    random_state: Optional[int] = None
    scale: bool = True
    shared_gram: bool = True
    warm_start: bool = True
    #: ``False`` drops every fit to the retained original SMO formulation
    #: (full error-vector recomputation per candidate step) — the per-fit
    #: *performance* baseline of the Figure 8 throughput gate.  The
    #: *bit-identity* reference keeps the cache on and only disables
    #: ``shared_gram``/``warm_start``.
    error_cache: bool = True

    def _fold_kernel(self, X_train: np.ndarray) -> Kernel:
        """Resolve the fold-level kernel (fixed across training sizes)."""
        if isinstance(self.kernel, Kernel):
            return self.kernel
        name = str(self.kernel)
        if name == "precomputed":
            raise ValueError(
                "SVCFoldFitter computes its own Gram matrices; pass the "
                "underlying kernel, not 'precomputed'"
            )
        if name == "linear":
            return make_kernel("linear")
        gamma = self.gamma if self.gamma is not None else scale_gamma(X_train)
        return make_kernel(name, gamma=gamma)

    def _make_svc(self, kernel: object) -> OneVsOneSVC:
        return OneVsOneSVC(
            C=self.C,
            kernel=kernel,
            gamma=self.gamma,
            tol=self.tol,
            max_passes=self.max_passes,
            max_iter=self.max_iter,
            random_state=self.random_state,
            error_cache=self.error_cache,
        )

    def begin_fold(
        self, X_train: np.ndarray, y_train: np.ndarray, X_test: np.ndarray
    ) -> dict:
        """Fold-level setup: scaling, kernel resolution and (shared) Grams.

        ``X_train`` arrives in the shuffled fold order — every training
        subset evaluated by ``fit_predict`` is a leading prefix of it.
        """
        X_train = np.atleast_2d(np.asarray(X_train, dtype=float))
        X_test = np.atleast_2d(np.asarray(X_test, dtype=float))
        y_train = np.asarray(y_train)
        if self.scale:
            scaler = StandardScaler().fit(X_train)
            X_train = scaler.transform(X_train)
            X_test = scaler.transform(X_test)
        kernel = self._fold_kernel(X_train)
        state = {"y": y_train, "kernel": kernel}
        if self.shared_gram:
            state["K_train"] = kernel(X_train, X_train)
            state["K_test"] = kernel(X_test, X_train)
        else:
            state["X_train"] = X_train
            state["X_test"] = X_test
        return state

    def fit_predict(self, state: dict, size: int) -> np.ndarray:
        """Fit on the first ``size`` fold rows; predict the test fold.

        ``learning_curve`` evaluates sizes in increasing order, so with
        ``warm_start`` each fit continues from the previous prefix's dual
        state (kept in ``state``).
        """
        y = state["y"][:size]
        warm = state.get("pair_states") if self.warm_start else None
        if self.shared_gram:
            clf = self._make_svc("precomputed")
            clf.fit(state["K_train"][:size, :size], y, warm_init=warm)
            predicted = clf.predict(state["K_test"][:, :size])
        else:
            clf = self._make_svc(state["kernel"])
            clf.fit(state["X_train"][:size], y, warm_init=warm)
            predicted = clf.predict(state["X_test"])
        if self.warm_start:
            state["pair_states"] = clf.pair_states()
        return predicted


@dataclass(frozen=True)
class LearningCurveResult:
    """Learning-curve data: accuracy as a function of training-set size.

    Attributes
    ----------
    train_sizes:
        Numbers of training samples evaluated.
    mean_accuracy:
        Mean test accuracy across folds and repeats, per training size.
    ci95:
        Half-width of the 95 % confidence interval across repeats, per size
        (the error bars of Figure 8).  ``NaN`` — like ``mean_accuracy`` —
        for sizes no repeat could evaluate (e.g. every training subset of
        that size was single-class).
    all_scores:
        Raw matrix of shape ``(len(train_sizes), n_repeats)`` of per-repeat
        fold-averaged accuracies.
    """

    train_sizes: np.ndarray
    mean_accuracy: np.ndarray
    ci95: np.ndarray
    all_scores: np.ndarray


def learning_curve(
    make_estimator: Optional[Callable[[], object]],
    X: np.ndarray,
    y: Sequence,
    train_sizes: Sequence[int],
    *,
    n_folds: int = 5,
    n_repeats: int = 10,
    rng: Optional[np.random.Generator] = None,
    fitter: Optional[object] = None,
) -> LearningCurveResult:
    """Reproduce the paper's Figure 8 protocol.

    For each repeat, the data is split into ``n_folds`` stratified folds.
    For each fold and each requested training-set size ``m``, the estimator
    is trained on the first ``m`` samples of the training fold (shuffled) and
    scored on the test fold.  The per-repeat score of a size is the mean over
    folds; the reported mean and 95 % confidence interval are over repeats.

    The work per fold is delegated either to a plain estimator factory
    (``make_estimator``: one fresh ``fit``/``predict`` object per subset)
    or to a *fold fitter* (``fitter``: an object with ``begin_fold(X_train,
    y_train, X_test)`` and ``fit_predict(state, size)``, e.g.
    :class:`SVCFoldFitter`), which sees the whole shuffled training fold
    once and can therefore share per-fold work — kernel matrices above all
    — across the training sizes.  Exactly one of the two must be given;
    both consume the random stream identically, so swapping a factory for
    an equivalent fitter never changes the folds.

    Training subsets containing a single class are skipped: a one-class fit
    degenerates to a constant predictor, which would silently bias small
    training sizes on imbalanced data.  Sizes for which *no* fold of any
    repeat produced a valid fit report ``NaN`` mean *and* ``NaN`` ci95
    (never a misleading zero-width interval).
    """
    if (make_estimator is None) == (fitter is None):
        raise ValueError("provide exactly one of make_estimator and fitter")
    X = np.atleast_2d(np.asarray(X, dtype=float))
    y = np.asarray(y)
    if rng is None:
        rng = np.random.default_rng()
    sizes = np.asarray(sorted(set(int(s) for s in train_sizes if s >= 1)), dtype=int)
    if sizes.size == 0:
        raise ValueError("train_sizes must contain at least one positive size")

    scores = np.full((sizes.size, n_repeats), np.nan)
    for rep in range(n_repeats):
        fold_scores: Dict[int, List[float]] = {int(s): [] for s in sizes}
        for train_idx, test_idx in stratified_kfold_indices(y, n_folds, rng):
            shuffled = rng.permutation(train_idx)
            if test_idx.size == 0:
                # A dataset barely above n_folds can leave a fold without
                # test samples (round-robin stratification); there is
                # nothing to score, so the fold contributes no values.
                # The permutation above is still drawn, keeping the random
                # stream — and hence every other fold — unchanged.
                continue
            fold_state = None  # built lazily: folds may have no valid size
            for s in sizes:
                if s > shuffled.size:
                    continue
                subset = shuffled[:s]
                if np.unique(y[subset]).size < 2:
                    continue
                if fitter is not None:
                    if fold_state is None:
                        fold_state = fitter.begin_fold(
                            X[shuffled], y[shuffled], X[test_idx]
                        )
                    predicted = fitter.fit_predict(fold_state, int(s))
                else:
                    est = make_estimator()
                    est.fit(X[subset], y[subset])
                    predicted = est.predict(X[test_idx])
                fold_scores[int(s)].append(accuracy(y[test_idx], predicted))
        for si, s in enumerate(sizes):
            vals = fold_scores[int(s)]
            if vals:
                scores[si, rep] = float(np.mean(vals))

    counts = np.sum(~np.isnan(scores), axis=1)
    valid = counts > 0
    mean = np.full(sizes.size, np.nan)
    ci95 = np.full(sizes.size, np.nan)
    if valid.any():
        mean[valid] = np.nanmean(scores[valid], axis=1)
        std = np.nanstd(scores[valid], axis=1)
        ci95[valid] = 1.96 * std / np.sqrt(counts[valid])
    return LearningCurveResult(
        train_sizes=sizes, mean_accuracy=mean, ci95=ci95, all_scores=scores
    )

"""Cross-validation utilities.

The paper evaluates the RE classifier with 5-fold cross-validation repeated
10 times to smooth out the randomness of the split (Section VII-B), and
plots a learning curve over increasing training-set sizes.  This module
provides plain and stratified k-fold splitters plus the repeated
learning-curve machinery, without any external ML dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .metrics import accuracy

__all__ = [
    "kfold_indices",
    "stratified_fold_assignments",
    "stratified_kfold_indices",
    "train_test_split",
    "cross_val_scores",
    "learning_curve",
    "LearningCurveResult",
]


def kfold_indices(
    n_samples: int, n_folds: int, rng: Optional[np.random.Generator] = None
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` pairs for a shuffled k-fold split."""
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    if n_samples < n_folds:
        raise ValueError("more folds than samples")
    if rng is None:
        rng = np.random.default_rng()
    perm = rng.permutation(n_samples)
    folds = np.array_split(perm, n_folds)
    for i in range(n_folds):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(n_folds) if j != i])
        yield train_idx, test_idx


def stratified_fold_assignments(
    y: Sequence, n_folds: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Stratified fold membership as one integer array.

    Returns ``assignments`` with ``assignments[i]`` the fold of sample
    ``i``: per class, a shuffled round-robin spread over the folds.  This is
    the columnar form of the stratified split — fold ``k``'s test set is
    ``assignments == k`` — used by the vectorised cross-validation paths;
    :func:`stratified_kfold_indices` derives its index pairs from it, so
    both consume the random stream identically.

    Classes with fewer members than folds are spread as evenly as possible;
    a class may then be absent from some training folds, matching what
    happens with the paper's small event counts.
    """
    y = np.asarray(y)
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    if y.shape[0] < n_folds:
        raise ValueError("more folds than samples")
    if rng is None:
        rng = np.random.default_rng()
    assignments = np.empty(y.shape[0], dtype=np.intp)
    for cls in np.unique(y):
        idx = rng.permutation(np.flatnonzero(y == cls))
        assignments[idx] = np.arange(idx.shape[0]) % n_folds
    return assignments


def stratified_kfold_indices(
    y: Sequence, n_folds: int, rng: Optional[np.random.Generator] = None
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield k-fold splits preserving per-class proportions.

    Index pairs are derived from :func:`stratified_fold_assignments`
    (train and test indices both ascending, as before).
    """
    assignments = stratified_fold_assignments(y, n_folds, rng)
    for i in range(n_folds):
        test_mask = assignments == i
        yield (
            np.flatnonzero(~test_mask).astype(int),
            np.flatnonzero(test_mask).astype(int),
        )


def train_test_split(
    n_samples: int,
    test_fraction: float = 0.2,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(train_idx, test_idx)`` for a single shuffled split."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if rng is None:
        rng = np.random.default_rng()
    perm = rng.permutation(n_samples)
    n_test = max(1, int(round(test_fraction * n_samples)))
    n_test = min(n_test, n_samples - 1)
    return perm[n_test:], perm[:n_test]


def cross_val_scores(
    make_estimator: Callable[[], object],
    X: np.ndarray,
    y: Sequence,
    n_folds: int = 5,
    *,
    stratified: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Accuracy of a freshly constructed estimator on each CV fold.

    ``make_estimator`` must return an unfitted object exposing ``fit`` and
    ``predict`` (e.g. a lambda constructing :class:`~repro.ml.multiclass.OneVsOneSVC`).
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    y = np.asarray(y)
    splitter = (
        stratified_kfold_indices(y, n_folds, rng)
        if stratified
        else kfold_indices(X.shape[0], n_folds, rng)
    )
    scores = []
    for train_idx, test_idx in splitter:
        est = make_estimator()
        est.fit(X[train_idx], y[train_idx])
        scores.append(accuracy(y[test_idx], est.predict(X[test_idx])))
    return np.asarray(scores)


@dataclass(frozen=True)
class LearningCurveResult:
    """Learning-curve data: accuracy as a function of training-set size.

    Attributes
    ----------
    train_sizes:
        Numbers of training samples evaluated.
    mean_accuracy:
        Mean test accuracy across folds and repeats, per training size.
    ci95:
        Half-width of the 95 % confidence interval across repeats, per size
        (the error bars of Figure 8).  ``NaN`` — like ``mean_accuracy`` —
        for sizes no repeat could evaluate (e.g. every training subset of
        that size was single-class).
    all_scores:
        Raw matrix of shape ``(len(train_sizes), n_repeats)`` of per-repeat
        fold-averaged accuracies.
    """

    train_sizes: np.ndarray
    mean_accuracy: np.ndarray
    ci95: np.ndarray
    all_scores: np.ndarray


def learning_curve(
    make_estimator: Callable[[], object],
    X: np.ndarray,
    y: Sequence,
    train_sizes: Sequence[int],
    *,
    n_folds: int = 5,
    n_repeats: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> LearningCurveResult:
    """Reproduce the paper's Figure 8 protocol.

    For each repeat, the data is split into ``n_folds`` stratified folds.
    For each fold and each requested training-set size ``m``, the estimator
    is trained on the first ``m`` samples of the training fold (shuffled) and
    scored on the test fold.  The per-repeat score of a size is the mean over
    folds; the reported mean and 95 % confidence interval are over repeats.

    Training subsets containing a single class are skipped: a one-class fit
    degenerates to a constant predictor, which would silently bias small
    training sizes on imbalanced data.  Sizes for which *no* fold of any
    repeat produced a valid fit report ``NaN`` mean *and* ``NaN`` ci95
    (never a misleading zero-width interval).
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    y = np.asarray(y)
    if rng is None:
        rng = np.random.default_rng()
    sizes = np.asarray(sorted(set(int(s) for s in train_sizes if s >= 1)), dtype=int)
    if sizes.size == 0:
        raise ValueError("train_sizes must contain at least one positive size")

    scores = np.full((sizes.size, n_repeats), np.nan)
    for rep in range(n_repeats):
        fold_scores: Dict[int, List[float]] = {int(s): [] for s in sizes}
        for train_idx, test_idx in stratified_kfold_indices(y, n_folds, rng):
            shuffled = rng.permutation(train_idx)
            for s in sizes:
                if s > shuffled.size:
                    continue
                subset = shuffled[:s]
                if np.unique(y[subset]).size < 2:
                    continue
                est = make_estimator()
                est.fit(X[subset], y[subset])
                fold_scores[int(s)].append(
                    accuracy(y[test_idx], est.predict(X[test_idx]))
                )
        for si, s in enumerate(sizes):
            vals = fold_scores[int(s)]
            if vals:
                scores[si, rep] = float(np.mean(vals))

    counts = np.sum(~np.isnan(scores), axis=1)
    valid = counts > 0
    mean = np.full(sizes.size, np.nan)
    ci95 = np.full(sizes.size, np.nan)
    if valid.any():
        mean[valid] = np.nanmean(scores[valid], axis=1)
        std = np.nanstd(scores[valid], axis=1)
        ci95[valid] = 1.96 * std / np.sqrt(counts[valid])
    return LearningCurveResult(
        train_sizes=sizes, mean_accuracy=mean, ci95=ci95, all_scores=scores
    )

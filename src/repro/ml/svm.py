"""Binary soft-margin Support Vector Machine trained with SMO.

The Radio Environment module of FADEWICH uses an SVM to map a radio
signature (per-stream variance / entropy / autocorrelation features) to the
workstation whose user caused it.  scikit-learn is unavailable offline, so
this module implements a binary C-SVM with the Sequential Minimal
Optimization (SMO) algorithm of Platt (1998), with the usual working-set
heuristics (maximal KKT violation for the first multiplier, maximal
|E_i - E_j| for the second).

The solver maintains the SMO *error cache*: the vector ``E = (alpha * y) @
K + b - y`` is initialised once and updated incrementally (two rank-one
kernel-column updates plus the bias shift) on every accepted ``(i, j)``
step, instead of being recomputed with a full O(n^2) pass inside the inner
loop of every candidate step.

Precomputed kernels
-------------------

``kernel="precomputed"`` fits directly on a Gram matrix: ``fit(K, y)``
takes the square training Gram, and ``predict`` / ``decision_function``
take the ``(m, n_train)`` Gram rows between the query points and the
*original training set* (support-vector columns are selected internally
via ``support_idx_``).  Because the kernels in :mod:`repro.ml.kernels` are
slice-stable, fitting on an index-sliced view of a larger Gram matrix is
bit-identical to a direct fit on the corresponding sample rows — the
property the shared-Gram learning-curve fast path relies on.

Only the binary classifier lives here; multi-class composition (one-vs-one
voting, as in libsvm) lives in :mod:`repro.ml.multiclass`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .kernels import Kernel, RBFKernel, make_kernel, scale_gamma

__all__ = ["BinarySVC", "SVMNotFittedError"]


class SVMNotFittedError(RuntimeError):
    """Raised when ``predict`` / ``decision_function`` precede ``fit``."""


@dataclass
class BinarySVC:
    """Binary C-support-vector classifier.

    Parameters
    ----------
    C:
        Soft-margin penalty.  Larger values penalise margin violations more.
    kernel:
        A :class:`~repro.ml.kernels.Kernel` instance, a kernel name
        (``"linear"``, ``"rbf"``, ``"poly"``), or ``"precomputed"`` to fit
        directly on a Gram matrix (see the module docstring).
    gamma:
        RBF/poly kernel coefficient.  ``None`` selects ``1 / (n_features *
        Var(X))`` ("scale" heuristic) at fit time.
    tol:
        KKT violation tolerance used as the SMO stopping criterion.
    max_passes:
        Number of consecutive full passes without any multiplier update
        required before training stops.
    max_iter:
        Hard cap on optimisation sweeps, as a safety net.
    random_state:
        Seed for the tie-breaking randomness in the second-choice heuristic.

    Notes
    -----
    Labels passed to :meth:`fit` may be any two distinct values; internally
    they are mapped to ``{-1, +1}`` and :meth:`predict` returns the original
    values.
    """

    C: float = 1.0
    kernel: object = "rbf"
    gamma: Optional[float] = None
    tol: float = 1e-3
    max_passes: int = 5
    max_iter: int = 200
    random_state: Optional[int] = None
    #: When False, run the retained original SMO formulation that
    #: recomputes the full error vector inside every candidate step (an
    #: O(n^2) pass) instead of maintaining the incremental cache.  Kept as
    #: the documented performance/semantics reference the throughput gates
    #: measure against; the two variants converge to KKT points of the
    #: same ``tol`` quality but follow different floating-point
    #: trajectories, so their fits agree statistically, not bitwise.
    error_cache: bool = True

    # fitted state
    support_vectors_: np.ndarray = field(default=None, repr=False)
    support_idx_: np.ndarray = field(default=None, repr=False)
    dual_coef_: np.ndarray = field(default=None, repr=False)
    alpha_: np.ndarray = field(default=None, repr=False)
    intercept_: float = field(default=0.0, repr=False)
    classes_: np.ndarray = field(default=None, repr=False)
    _kernel_obj: Kernel = field(default=None, repr=False)
    _precomputed: bool = field(default=False, repr=False)
    _n_fit: int = field(default=0, repr=False)
    _fitted: bool = field(default=False, repr=False)

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    @property
    def _is_precomputed_kernel(self) -> bool:
        return not isinstance(self.kernel, Kernel) and str(self.kernel) == "precomputed"

    def _resolve_kernel(self, X: np.ndarray) -> Kernel:
        if isinstance(self.kernel, Kernel):
            return self.kernel
        gamma = self.gamma
        if gamma is None:
            gamma = scale_gamma(X)
        if self.kernel == "rbf":
            return RBFKernel(gamma=gamma)
        if self.kernel in ("poly", "polynomial"):
            return make_kernel("poly", gamma=gamma)
        return make_kernel(str(self.kernel))

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        init: Optional[tuple] = None,
    ) -> "BinarySVC":
        """Train the classifier on samples ``X`` with binary labels ``y``.

        With ``kernel="precomputed"``, ``X`` is the square training Gram
        matrix instead of a sample matrix.

        ``init`` optionally warm-starts the SMO solver with ``(alpha0,
        b0)`` dual state from a related problem — e.g. the fit on a prefix
        of this training set, as in the learning-curve fast path.
        ``alpha0`` may be shorter than ``n`` (missing entries start at 0,
        which preserves dual feasibility) and must satisfy the box
        constraints.  A warm-started solve reaches a KKT point of the same
        ``tol`` quality as a cold one, generally in far fewer steps; the
        two stationary points may differ within that tolerance.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        precomputed = self._is_precomputed_kernel
        if precomputed:
            if X.shape[0] != X.shape[1]:
                raise ValueError(
                    "kernel='precomputed' requires a square Gram matrix, "
                    f"got shape {X.shape}"
                )
            K = X
            self._kernel_obj = None
        self._precomputed = precomputed
        self._n_fit = X.shape[0]
        classes = np.unique(y)
        if classes.shape[0] == 1:
            # Degenerate but not an error: always predict the single class.
            self.classes_ = classes
            self.support_vectors_ = None if precomputed else X[:1]
            self.support_idx_ = np.zeros(1, dtype=np.intp)
            self.dual_coef_ = np.zeros(1)
            self.alpha_ = np.zeros(X.shape[0])
            self.intercept_ = 1.0
            if not precomputed:
                self._kernel_obj = self._resolve_kernel(X)
            self._fitted = True
            return self
        if classes.shape[0] != 2:
            raise ValueError(
                f"BinarySVC requires exactly 2 classes, got {classes.shape[0]}"
            )
        self.classes_ = classes
        y_signed = np.where(y == classes[1], 1.0, -1.0)

        if not precomputed:
            kernel = self._resolve_kernel(X)
            self._kernel_obj = kernel
            K = kernel(X, X)

        n = X.shape[0]
        alpha = np.zeros(n)
        b = 0.0
        rng = np.random.default_rng(self.random_state)

        if init is not None:
            alpha0, b0 = init
            alpha0 = np.asarray(alpha0, dtype=float)
            if alpha0.shape[0] > n:
                raise ValueError("warm-start alpha longer than the training set")
            alpha[: alpha0.shape[0]] = alpha0
            np.clip(alpha, 0.0, self.C, out=alpha)
            b = float(b0)

        if not self.error_cache:
            alpha, b = self._smo_reference(K, y_signed, alpha, b, rng)
            return self._finalize_fit(X, alpha, y_signed, b, precomputed)

        # SMO error cache: E = (alpha * y) @ K + b - y.  With alpha = 0 and
        # b = 0 this starts as -y and is updated incrementally on every
        # accepted step — never recomputed with an O(n^2) pass.
        if init is not None:
            E = (alpha * y_signed) @ K + b - y_signed
        else:
            E = -y_signed.copy()

        passes = 0
        it = 0
        # Cached extrema of the error vector: |E_i - E_j| is maximised at
        # either the largest or the smallest error, so the second-choice
        # heuristic only needs argmin/argmax of E — maintained here and
        # refreshed after accepted steps (the only times E changes),
        # instead of a full |E - E_i| scan per candidate.
        j_min = int(np.argmin(E))
        j_max = int(np.argmax(E))
        while passes < self.max_passes and it < self.max_iter:
            num_changed = 0
            # One vectorised KKT scan selects the sweep's candidate set —
            # the per-sample Python loop then only visits violators (and
            # a converged sweep costs one array pass instead of n checks).
            # Each candidate is re-checked against the *current* error
            # cache before stepping, since earlier steps in the sweep may
            # have repaired its violation.
            r = E * y_signed
            candidates = np.flatnonzero(
                ((r < -self.tol) & (alpha < self.C)) | ((r > self.tol) & (alpha > 0))
            )
            for i in candidates:
                E_i = float(E[i])
                r_i = E_i * y_signed[i]
                if (r_i < -self.tol and alpha[i] < self.C) or (
                    r_i > self.tol and alpha[i] > 0
                ):
                    # second-choice heuristic: maximise |E_i - E_j|
                    j = j_max if E[j_max] - E_i >= E_i - E[j_min] else j_min
                    if j == i:
                        j = int(rng.integers(0, n - 1))
                        if j >= i:
                            j += 1
                    E_j = float(E[j])

                    alpha_i_old, alpha_j_old = alpha[i], alpha[j]
                    if y_signed[i] != y_signed[j]:
                        L = max(0.0, alpha[j] - alpha[i])
                        H = min(self.C, self.C + alpha[j] - alpha[i])
                    else:
                        L = max(0.0, alpha[i] + alpha[j] - self.C)
                        H = min(self.C, alpha[i] + alpha[j])
                    if L >= H:
                        continue

                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue

                    alpha_j_new = alpha_j_old - y_signed[j] * (E_i - E_j) / eta
                    alpha_j_new = min(max(alpha_j_new, L), H)
                    if abs(alpha_j_new - alpha_j_old) < 1e-7:
                        continue
                    alpha_i_new = alpha_i_old + y_signed[i] * y_signed[j] * (
                        alpha_j_old - alpha_j_new
                    )

                    b1 = (
                        b
                        - E_i
                        - y_signed[i] * (alpha_i_new - alpha_i_old) * K[i, i]
                        - y_signed[j] * (alpha_j_new - alpha_j_old) * K[i, j]
                    )
                    b2 = (
                        b
                        - E_j
                        - y_signed[i] * (alpha_i_new - alpha_i_old) * K[i, j]
                        - y_signed[j] * (alpha_j_new - alpha_j_old) * K[j, j]
                    )
                    if 0 < alpha_i_new < self.C:
                        b_new = b1
                    elif 0 < alpha_j_new < self.C:
                        b_new = b2
                    else:
                        b_new = (b1 + b2) / 2.0

                    # Incremental error-cache update for the accepted step:
                    # two kernel columns and the bias shift.
                    E += (
                        y_signed[i] * (alpha_i_new - alpha_i_old) * K[:, i]
                        + y_signed[j] * (alpha_j_new - alpha_j_old) * K[:, j]
                        + (b_new - b)
                    )
                    j_min = int(np.argmin(E))
                    j_max = int(np.argmax(E))
                    b = b_new
                    alpha[i], alpha[j] = alpha_i_new, alpha_j_new
                    num_changed += 1
            it += 1
            if num_changed == 0:
                passes += 1
            else:
                passes = 0

        return self._finalize_fit(X, alpha, y_signed, b, precomputed)

    def _smo_reference(
        self,
        K: np.ndarray,
        y_signed: np.ndarray,
        alpha: np.ndarray,
        b: float,
        rng: np.random.Generator,
    ) -> tuple:
        """The retained original SMO sweep (``error_cache=False``).

        Recomputes the decision value of each scanned sample and — inside
        every candidate step — the full error vector with an O(n^2) pass,
        exactly as the pre-cache implementation did.  Kept verbatim as the
        reference the error-cache optimisation is benchmarked against.
        """
        n = y_signed.shape[0]

        def decision(i: int) -> float:
            return float((alpha * y_signed) @ K[:, i] + b)

        passes = 0
        it = 0
        while passes < self.max_passes and it < self.max_iter:
            num_changed = 0
            for i in range(n):
                E_i = decision(i) - y_signed[i]
                r_i = E_i * y_signed[i]
                if (r_i < -self.tol and alpha[i] < self.C) or (
                    r_i > self.tol and alpha[i] > 0
                ):
                    # second-choice heuristic: maximise |E_i - E_j|
                    errors = (alpha * y_signed) @ K + b - y_signed
                    j = int(np.argmax(np.abs(errors - E_i)))
                    if j == i:
                        j = int(rng.integers(0, n - 1))
                        if j >= i:
                            j += 1
                    E_j = float(errors[j])

                    alpha_i_old, alpha_j_old = alpha[i], alpha[j]
                    if y_signed[i] != y_signed[j]:
                        L = max(0.0, alpha[j] - alpha[i])
                        H = min(self.C, self.C + alpha[j] - alpha[i])
                    else:
                        L = max(0.0, alpha[i] + alpha[j] - self.C)
                        H = min(self.C, alpha[i] + alpha[j])
                    if L >= H:
                        continue

                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue

                    alpha_j_new = alpha_j_old - y_signed[j] * (E_i - E_j) / eta
                    alpha_j_new = min(max(alpha_j_new, L), H)
                    if abs(alpha_j_new - alpha_j_old) < 1e-7:
                        continue
                    alpha_i_new = alpha_i_old + y_signed[i] * y_signed[j] * (
                        alpha_j_old - alpha_j_new
                    )

                    b1 = (
                        b
                        - E_i
                        - y_signed[i] * (alpha_i_new - alpha_i_old) * K[i, i]
                        - y_signed[j] * (alpha_j_new - alpha_j_old) * K[i, j]
                    )
                    b2 = (
                        b
                        - E_j
                        - y_signed[i] * (alpha_i_new - alpha_i_old) * K[i, j]
                        - y_signed[j] * (alpha_j_new - alpha_j_old) * K[j, j]
                    )
                    if 0 < alpha_i_new < self.C:
                        b = b1
                    elif 0 < alpha_j_new < self.C:
                        b = b2
                    else:
                        b = (b1 + b2) / 2.0

                    alpha[i], alpha[j] = alpha_i_new, alpha_j_new
                    num_changed += 1
            it += 1
            if num_changed == 0:
                passes += 1
            else:
                passes = 0
        return alpha, b

    def _finalize_fit(
        self,
        X: np.ndarray,
        alpha: np.ndarray,
        y_signed: np.ndarray,
        b: float,
        precomputed: bool,
    ) -> "BinarySVC":
        """Extract the support set and publish the fitted state."""
        sv_mask = alpha > 1e-8
        if not np.any(sv_mask):
            # No support vectors found (e.g. perfectly separated trivial data);
            # keep everything so decision_function remains defined.
            sv_mask = np.ones(alpha.shape[0], dtype=bool)
        self.alpha_ = alpha
        self.support_idx_ = np.flatnonzero(sv_mask)
        self.support_vectors_ = None if precomputed else X[sv_mask]
        self.dual_coef_ = (alpha * y_signed)[sv_mask]
        self.intercept_ = float(b)
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Return the signed distance to the separating hyperplane.

        With ``kernel="precomputed"``, ``X`` holds the Gram rows between
        the query points and the full training set (shape
        ``(m, n_train)``); the support-vector columns are selected
        internally.
        """
        if not self._fitted:
            raise SVMNotFittedError("call fit() before decision_function()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if self._precomputed:
            if X.shape[1] != self._n_fit:
                raise ValueError(
                    f"precomputed decision needs Gram rows with {self._n_fit} "
                    f"training columns, got {X.shape[1]}"
                )
            K = X[:, self.support_idx_]
        else:
            K = self._kernel_obj(X, self.support_vectors_)
        return K @ self.dual_coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict class labels (in the original label space) for ``X``."""
        if not self._fitted:
            raise SVMNotFittedError("call fit() before predict()")
        if self.classes_.shape[0] == 1:
            X = np.atleast_2d(np.asarray(X, dtype=float))
            return np.full(X.shape[0], self.classes_[0])
        scores = self.decision_function(X)
        return np.where(scores >= 0, self.classes_[1], self.classes_[0])

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy of :meth:`predict` on ``(X, y)``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

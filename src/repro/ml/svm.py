"""Binary soft-margin Support Vector Machine trained with SMO.

The Radio Environment module of FADEWICH uses an SVM to map a radio
signature (per-stream variance / entropy / autocorrelation features) to the
workstation whose user caused it.  scikit-learn is unavailable offline, so
this module implements a binary C-SVM with the Sequential Minimal
Optimization (SMO) algorithm of Platt (1998), with the usual working-set
heuristics (maximal KKT violation for the first multiplier, maximal
|E_i - E_j| for the second).

Only the binary classifier lives here; multi-class composition (one-vs-one
voting, as in libsvm) lives in :mod:`repro.ml.multiclass`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .kernels import Kernel, RBFKernel, make_kernel

__all__ = ["BinarySVC", "SVMNotFittedError"]


class SVMNotFittedError(RuntimeError):
    """Raised when ``predict`` / ``decision_function`` precede ``fit``."""


@dataclass
class BinarySVC:
    """Binary C-support-vector classifier.

    Parameters
    ----------
    C:
        Soft-margin penalty.  Larger values penalise margin violations more.
    kernel:
        Either a :class:`~repro.ml.kernels.Kernel` instance or a kernel name
        (``"linear"``, ``"rbf"``, ``"poly"``).
    gamma:
        RBF/poly kernel coefficient.  ``None`` selects ``1 / (n_features *
        Var(X))`` ("scale" heuristic) at fit time.
    tol:
        KKT violation tolerance used as the SMO stopping criterion.
    max_passes:
        Number of consecutive full passes without any multiplier update
        required before training stops.
    max_iter:
        Hard cap on optimisation sweeps, as a safety net.
    random_state:
        Seed for the tie-breaking randomness in the second-choice heuristic.

    Notes
    -----
    Labels passed to :meth:`fit` may be any two distinct values; internally
    they are mapped to ``{-1, +1}`` and :meth:`predict` returns the original
    values.
    """

    C: float = 1.0
    kernel: object = "rbf"
    gamma: Optional[float] = None
    tol: float = 1e-3
    max_passes: int = 5
    max_iter: int = 200
    random_state: Optional[int] = None

    # fitted state
    support_vectors_: np.ndarray = field(default=None, repr=False)
    dual_coef_: np.ndarray = field(default=None, repr=False)
    intercept_: float = field(default=0.0, repr=False)
    classes_: np.ndarray = field(default=None, repr=False)
    _kernel_obj: Kernel = field(default=None, repr=False)
    _fitted: bool = field(default=False, repr=False)

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def _resolve_kernel(self, X: np.ndarray) -> Kernel:
        if isinstance(self.kernel, Kernel):
            return self.kernel
        gamma = self.gamma
        if gamma is None:
            var = float(X.var()) if X.size else 1.0
            if var <= 0.0:
                var = 1.0
            gamma = 1.0 / (X.shape[1] * var)
        if self.kernel == "rbf":
            return RBFKernel(gamma=gamma)
        if self.kernel in ("poly", "polynomial"):
            return make_kernel("poly", gamma=gamma)
        return make_kernel(str(self.kernel))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BinarySVC":
        """Train the classifier on samples ``X`` with binary labels ``y``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have inconsistent lengths")
        classes = np.unique(y)
        if classes.shape[0] == 1:
            # Degenerate but not an error: always predict the single class.
            self.classes_ = classes
            self.support_vectors_ = X[:1]
            self.dual_coef_ = np.zeros(1)
            self.intercept_ = 1.0
            self._kernel_obj = self._resolve_kernel(X)
            self._fitted = True
            return self
        if classes.shape[0] != 2:
            raise ValueError(
                f"BinarySVC requires exactly 2 classes, got {classes.shape[0]}"
            )
        self.classes_ = classes
        y_signed = np.where(y == classes[1], 1.0, -1.0)

        kernel = self._resolve_kernel(X)
        self._kernel_obj = kernel
        K = kernel(X, X)

        n = X.shape[0]
        alpha = np.zeros(n)
        b = 0.0
        rng = np.random.default_rng(self.random_state)

        def decision(i: int) -> float:
            return float((alpha * y_signed) @ K[:, i] + b)

        passes = 0
        it = 0
        while passes < self.max_passes and it < self.max_iter:
            num_changed = 0
            for i in range(n):
                E_i = decision(i) - y_signed[i]
                r_i = E_i * y_signed[i]
                if (r_i < -self.tol and alpha[i] < self.C) or (
                    r_i > self.tol and alpha[i] > 0
                ):
                    # second-choice heuristic: maximise |E_i - E_j|
                    errors = (alpha * y_signed) @ K + b - y_signed
                    j = int(np.argmax(np.abs(errors - E_i)))
                    if j == i:
                        j = int(rng.integers(0, n - 1))
                        if j >= i:
                            j += 1
                    E_j = float(errors[j])

                    alpha_i_old, alpha_j_old = alpha[i], alpha[j]
                    if y_signed[i] != y_signed[j]:
                        L = max(0.0, alpha[j] - alpha[i])
                        H = min(self.C, self.C + alpha[j] - alpha[i])
                    else:
                        L = max(0.0, alpha[i] + alpha[j] - self.C)
                        H = min(self.C, alpha[i] + alpha[j])
                    if L >= H:
                        continue

                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue

                    alpha_j_new = alpha_j_old - y_signed[j] * (E_i - E_j) / eta
                    alpha_j_new = min(max(alpha_j_new, L), H)
                    if abs(alpha_j_new - alpha_j_old) < 1e-7:
                        continue
                    alpha_i_new = alpha_i_old + y_signed[i] * y_signed[j] * (
                        alpha_j_old - alpha_j_new
                    )

                    b1 = (
                        b
                        - E_i
                        - y_signed[i] * (alpha_i_new - alpha_i_old) * K[i, i]
                        - y_signed[j] * (alpha_j_new - alpha_j_old) * K[i, j]
                    )
                    b2 = (
                        b
                        - E_j
                        - y_signed[i] * (alpha_i_new - alpha_i_old) * K[i, j]
                        - y_signed[j] * (alpha_j_new - alpha_j_old) * K[j, j]
                    )
                    if 0 < alpha_i_new < self.C:
                        b = b1
                    elif 0 < alpha_j_new < self.C:
                        b = b2
                    else:
                        b = (b1 + b2) / 2.0

                    alpha[i], alpha[j] = alpha_i_new, alpha_j_new
                    num_changed += 1
            it += 1
            if num_changed == 0:
                passes += 1
            else:
                passes = 0

        sv_mask = alpha > 1e-8
        if not np.any(sv_mask):
            # No support vectors found (e.g. perfectly separated trivial data);
            # keep everything so decision_function remains defined.
            sv_mask = np.ones(n, dtype=bool)
        self.support_vectors_ = X[sv_mask]
        self.dual_coef_ = (alpha * y_signed)[sv_mask]
        self.intercept_ = float(b)
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Return the signed distance to the separating hyperplane."""
        if not self._fitted:
            raise SVMNotFittedError("call fit() before decision_function()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        K = self._kernel_obj(X, self.support_vectors_)
        return K @ self.dual_coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict class labels (in the original label space) for ``X``."""
        if not self._fitted:
            raise SVMNotFittedError("call fit() before predict()")
        if self.classes_.shape[0] == 1:
            X = np.atleast_2d(np.asarray(X, dtype=float))
            return np.full(X.shape[0], self.classes_[0])
        scores = self.decision_function(X)
        return np.where(scores >= 0, self.classes_[1], self.classes_[0])

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy of :meth:`predict` on ``(X, y)``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

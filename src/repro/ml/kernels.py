"""Kernel functions for the SVM substrate.

FADEWICH's Radio Environment (RE) module classifies radio signatures with a
Support Vector Machine.  scikit-learn is not available in this environment,
so the kernels (and the SMO solver in :mod:`repro.ml.svm`) are implemented
from scratch on top of numpy.

A kernel is represented by a :class:`Kernel` object exposing a single
``__call__(X, Y)`` computing the Gram matrix between two sample matrices of
shapes ``(n, d)`` and ``(m, d)``.

Slice stability
---------------

Every kernel here guarantees **slice stability**: each Gram entry depends
only on its own pair of rows, so

``kernel(X[idx], Y[jdx]) == kernel(X, Y)[np.ix_(idx, jdx)]``

holds *bitwise*, for any index subsets.  This is what makes precomputed-
kernel SVC fits (``kernel="precomputed"`` on index-sliced Gram views)
bit-identical to direct fits on the same row subsets — the contract the
shared-Gram learning-curve fast path is built on.  BLAS matrix products do
**not** have this property (their accumulation order depends on the matrix
shapes), so the cross terms are computed with ``np.einsum`` (plain C loops
whose per-element reduction order depends only on the feature axis); do not
"optimise" them back to ``@``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Kernel",
    "LinearKernel",
    "RBFKernel",
    "PolynomialKernel",
    "make_kernel",
    "scale_gamma",
]


def scale_gamma(X: np.ndarray) -> float:
    """The ``"scale"`` heuristic ``1 / (n_features * Var(X))``.

    The shared gamma default of the SVM substrate (libsvm's ``"scale"``):
    used by :class:`~repro.ml.svm.BinarySVC` at fit time and by the
    learning-curve fold fitters when fixing one kernel per fold.
    Degenerate (constant or empty) data falls back to ``1 / n_features``.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    var = float(X.var()) if X.size else 1.0
    if var <= 0.0:
        var = 1.0
    return 1.0 / (X.shape[1] * var)


def _cross_dot(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Slice-stable pairwise dot products ``out[i, j] = X[i] . Y[j]``.

    ``np.einsum`` (without ``optimize``) reduces over the feature axis with
    a fixed per-element order, unlike BLAS ``X @ Y.T`` whose blocking — and
    hence rounding — depends on the operand shapes.
    """
    return np.einsum("ik,jk->ij", X, Y)


class Kernel:
    """Base class for kernel functions.

    Subclasses implement :meth:`gram` returning the kernel matrix
    ``K[i, j] = k(X[i], Y[j])``, computed slice-stably (see the module
    docstring).
    """

    name = "base"

    def gram(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Y = np.atleast_2d(np.asarray(Y, dtype=float))
        if X.shape[1] != Y.shape[1]:
            raise ValueError(
                f"feature dimension mismatch: {X.shape[1]} vs {Y.shape[1]}"
            )
        return self.gram(X, Y)

    def diagonal(self, X: np.ndarray) -> np.ndarray:
        """Return ``k(x_i, x_i)`` for each row of ``X`` (used by SMO)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.diag(self(X, X))


@dataclass
class LinearKernel(Kernel):
    """The linear kernel ``k(x, y) = x . y``."""

    name = "linear"

    def gram(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        return _cross_dot(X, Y)

    def diagonal(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.einsum("ij,ij->i", X, X)


@dataclass
class RBFKernel(Kernel):
    """The Gaussian radial basis function kernel.

    ``k(x, y) = exp(-gamma * ||x - y||^2)``

    Parameters
    ----------
    gamma:
        Inverse length-scale.  If ``None``, a data-dependent default of
        ``1 / n_features`` is used at fit time by the SVM.
    """

    gamma: float = 1.0
    name = "rbf"

    def gram(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        sq_x = np.einsum("ij,ij->i", X, X)[:, None]
        sq_y = np.einsum("ij,ij->i", Y, Y)[None, :]
        sq_dist = np.maximum(sq_x + sq_y - 2.0 * _cross_dot(X, Y), 0.0)
        return np.exp(-self.gamma * sq_dist)

    def diagonal(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.ones(X.shape[0])


@dataclass
class PolynomialKernel(Kernel):
    """The polynomial kernel ``k(x, y) = (gamma * x.y + coef0) ** degree``."""

    degree: int = 3
    gamma: float = 1.0
    coef0: float = 1.0
    name = "poly"

    def gram(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        return (self.gamma * _cross_dot(X, Y) + self.coef0) ** self.degree

    def diagonal(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        dot = np.einsum("ij,ij->i", X, X)
        return (self.gamma * dot + self.coef0) ** self.degree


def make_kernel(name: str, **params) -> Kernel:
    """Construct a kernel by name.

    Parameters
    ----------
    name:
        One of ``"linear"``, ``"rbf"`` or ``"poly"``.
    params:
        Keyword parameters forwarded to the kernel constructor
        (e.g. ``gamma`` for the RBF kernel).
    """
    name = name.lower()
    if name == "linear":
        return LinearKernel()
    if name == "rbf":
        return RBFKernel(**params)
    if name in ("poly", "polynomial"):
        return PolynomialKernel(**params)
    raise ValueError(f"unknown kernel: {name!r}")

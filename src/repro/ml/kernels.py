"""Kernel functions for the SVM substrate.

FADEWICH's Radio Environment (RE) module classifies radio signatures with a
Support Vector Machine.  scikit-learn is not available in this environment,
so the kernels (and the SMO solver in :mod:`repro.ml.svm`) are implemented
from scratch on top of numpy.

A kernel is represented by a :class:`Kernel` object exposing a single
``__call__(X, Y)`` computing the Gram matrix between two sample matrices of
shapes ``(n, d)`` and ``(m, d)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Kernel",
    "LinearKernel",
    "RBFKernel",
    "PolynomialKernel",
    "make_kernel",
]


class Kernel:
    """Base class for kernel functions.

    Subclasses implement :meth:`gram` returning the kernel matrix
    ``K[i, j] = k(X[i], Y[j])``.
    """

    name = "base"

    def gram(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Y = np.atleast_2d(np.asarray(Y, dtype=float))
        if X.shape[1] != Y.shape[1]:
            raise ValueError(
                f"feature dimension mismatch: {X.shape[1]} vs {Y.shape[1]}"
            )
        return self.gram(X, Y)

    def diagonal(self, X: np.ndarray) -> np.ndarray:
        """Return ``k(x_i, x_i)`` for each row of ``X`` (used by SMO)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.einsum("ij,ij->i", X, X) if False else np.diag(self(X, X))


@dataclass
class LinearKernel(Kernel):
    """The linear kernel ``k(x, y) = x . y``."""

    name = "linear"

    def gram(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        return X @ Y.T

    def diagonal(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.einsum("ij,ij->i", X, X)


@dataclass
class RBFKernel(Kernel):
    """The Gaussian radial basis function kernel.

    ``k(x, y) = exp(-gamma * ||x - y||^2)``

    Parameters
    ----------
    gamma:
        Inverse length-scale.  If ``None``, a data-dependent default of
        ``1 / n_features`` is used at fit time by the SVM.
    """

    gamma: float = 1.0
    name = "rbf"

    def gram(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        sq_x = np.einsum("ij,ij->i", X, X)[:, None]
        sq_y = np.einsum("ij,ij->i", Y, Y)[None, :]
        sq_dist = np.maximum(sq_x + sq_y - 2.0 * (X @ Y.T), 0.0)
        return np.exp(-self.gamma * sq_dist)

    def diagonal(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.ones(X.shape[0])


@dataclass
class PolynomialKernel(Kernel):
    """The polynomial kernel ``k(x, y) = (gamma * x.y + coef0) ** degree``."""

    degree: int = 3
    gamma: float = 1.0
    coef0: float = 1.0
    name = "poly"

    def gram(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        return (self.gamma * (X @ Y.T) + self.coef0) ** self.degree

    def diagonal(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        dot = np.einsum("ij,ij->i", X, X)
        return (self.gamma * dot + self.coef0) ** self.degree


def make_kernel(name: str, **params) -> Kernel:
    """Construct a kernel by name.

    Parameters
    ----------
    name:
        One of ``"linear"``, ``"rbf"`` or ``"poly"``.
    params:
        Keyword parameters forwarded to the kernel constructor
        (e.g. ``gamma`` for the RBF kernel).
    """
    name = name.lower()
    if name == "linear":
        return LinearKernel()
    if name == "rbf":
        return RBFKernel(**params)
    if name in ("poly", "polynomial"):
        return PolynomialKernel(**params)
    raise ValueError(f"unknown kernel: {name!r}")

"""From-scratch machine-learning substrate used by FADEWICH.

The paper relies on a small toolbox of standard techniques — Gaussian kernel
density estimation for the MD normal profile, an SVM for the RE classifier,
k-fold cross-validation for the evaluation and mutual-information feature
analysis for the appendix.  None of scikit-learn is available offline, so
this package reimplements each piece on numpy/scipy.

Public API
----------
- :class:`~repro.ml.kde.GaussianKDE`
- :class:`~repro.ml.svm.BinarySVC`, :class:`~repro.ml.multiclass.OneVsOneSVC`
- :class:`~repro.ml.kernels.LinearKernel`, :class:`~repro.ml.kernels.RBFKernel`,
  :class:`~repro.ml.kernels.PolynomialKernel`
- :class:`~repro.ml.scaling.StandardScaler`, :class:`~repro.ml.scaling.MinMaxScaler`
- :class:`~repro.ml.features.FeatureExtractor` and the window feature functions
- :class:`~repro.ml.metrics.DetectionCounts`, ``accuracy``, ``confusion_matrix``
- ``kfold_indices``, ``stratified_kfold_indices``, ``learning_curve``
- ``relative_mutual_information``, ``rank_features_by_rmi``
- ``correlation_matrix``
"""

from .correlation import CorrelationResult, correlation_matrix, most_correlated_pairs
from .features import (
    FeatureExtractor,
    stream_features,
    window_autocorrelation,
    window_entropy,
    window_variance,
)
from .kde import (
    GaussianKDE,
    bisect_quantiles,
    mixture_quantiles,
    scott_bandwidth,
    silverman_bandwidth,
)
from .kernels import (
    Kernel,
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    make_kernel,
    scale_gamma,
)
from .metrics import (
    DetectionCounts,
    accuracy,
    confusion_matrix,
    f_measure,
    precision,
    recall,
)
from .multiclass import OneVsOneSVC
from .mutual_info import (
    FeatureImportance,
    conditional_entropy,
    marginal_entropy,
    quantize,
    rank_features_by_rmi,
    relative_mutual_information,
    stream_importance,
)
from .scaling import MinMaxScaler, StandardScaler
from .svm import BinarySVC, SVMNotFittedError
from .validation import (
    LearningCurveResult,
    SVCFoldFitter,
    cross_val_scores,
    kfold_indices,
    learning_curve,
    stratified_fold_assignments,
    stratified_kfold_indices,
    train_test_split,
)

__all__ = [
    "BinarySVC",
    "CorrelationResult",
    "DetectionCounts",
    "FeatureExtractor",
    "FeatureImportance",
    "GaussianKDE",
    "Kernel",
    "LearningCurveResult",
    "LinearKernel",
    "MinMaxScaler",
    "OneVsOneSVC",
    "PolynomialKernel",
    "RBFKernel",
    "SVCFoldFitter",
    "SVMNotFittedError",
    "StandardScaler",
    "accuracy",
    "bisect_quantiles",
    "conditional_entropy",
    "confusion_matrix",
    "correlation_matrix",
    "cross_val_scores",
    "f_measure",
    "kfold_indices",
    "learning_curve",
    "make_kernel",
    "marginal_entropy",
    "mixture_quantiles",
    "scale_gamma",
    "most_correlated_pairs",
    "precision",
    "quantize",
    "rank_features_by_rmi",
    "recall",
    "relative_mutual_information",
    "scott_bandwidth",
    "silverman_bandwidth",
    "stratified_fold_assignments",
    "stratified_kfold_indices",
    "stream_features",
    "stream_importance",
    "train_test_split",
    "window_autocorrelation",
    "window_entropy",
    "window_variance",
]

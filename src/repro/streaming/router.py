"""Multi-tenant ingestion: many offices, sharded workers, bounded queues.

:class:`IngestRouter` is the front-end the north-star service shape calls
for: every office (*tenant*) owns an independent
:class:`~repro.streaming.detector.OnlineDetector`, tenants are assigned
round-robin to a fixed worker shard at registration, and each shard is one
worker thread consuming a bounded :class:`queue.Queue`.  The design gives
three guarantees:

* **per-tenant FIFO** — a tenant's batches are processed by exactly one
  worker in submission order, so its decision stream is never reordered
  (batches of *different* tenants on different shards may interleave
  freely, which is fine — their detectors share no state);
* **backpressure** — :meth:`IngestRouter.submit` blocks once the target
  shard's queue holds ``queue_capacity`` batches, so a slow shard
  throttles its producers instead of buffering unboundedly;
* **clean drain/flush** — :meth:`IngestRouter.drain` blocks until every
  submitted batch is fully processed, and :meth:`IngestRouter.close`
  drains, stops the workers, and closes every tenant's open variation
  window (:meth:`~repro.streaming.detector.OnlineDetector.finalize`), so
  shutdown never drops work in flight.

Worker exceptions (e.g. out-of-order timestamps from a misbehaving
source) are captured and re-raised on the submitting/draining thread, not
swallowed in the worker.

Lifecycle edges are deterministic: ``submit()`` after (or racing with)
``close()`` raises ``RuntimeError`` — it can never slip a batch onto a
queue whose worker has already exited, which would make a later
``drain()`` hang forever on ``Queue.join`` — ``drain()`` after ``close()``
is a no-op, repeated ``close()`` is idempotent, and once a worker has
failed *every* subsequent ``submit``/``drain``/``close``/``register``
re-raises the failure instead of silently doing nothing.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.config import MDConfig
from .detector import DetectionBlock, OnlineDetector
from .source import SampleBatch

__all__ = ["IngestRouter", "RouterStats", "TenantState"]

_SHUTDOWN = object()


@dataclass
class RouterStats:
    """Counters describing one router's lifetime.

    ``submitted == processed`` after a successful :meth:`IngestRouter.drain`
    (nothing in flight); ``max_queue_depth`` reaching ``queue_capacity``
    means backpressure actually engaged.
    """

    n_tenants: int = 0
    batches_submitted: int = 0
    batches_processed: int = 0
    samples_processed: int = 0
    max_queue_depth: int = 0


@dataclass
class TenantState:
    """Everything the router holds for one office."""

    tenant: str
    shard: int
    detector: OnlineDetector
    blocks: List[DetectionBlock] = field(default_factory=list)
    n_batches: int = 0
    n_samples: int = 0

    def concatenated(self) -> DetectionBlock:
        """The tenant's whole decision stream as one block."""
        if not self.blocks:
            empty = np.empty(0)
            return DetectionBlock(
                times=empty,
                std_sums=empty.copy(),
                decisions=np.empty(0, dtype=np.int8),
                thresholds=empty.copy(),
                durations=empty.copy(),
            )
        return DetectionBlock(
            times=np.concatenate([b.times for b in self.blocks]),
            std_sums=np.concatenate([b.std_sums for b in self.blocks]),
            decisions=np.concatenate([b.decisions for b in self.blocks]),
            thresholds=np.concatenate([b.thresholds for b in self.blocks]),
            durations=np.concatenate([b.durations for b in self.blocks]),
        )


class IngestRouter:
    """Route sample batches from many offices to sharded detector workers.

    Parameters
    ----------
    n_workers:
        Worker shard count.  Tenants are assigned round-robin at
        registration and never migrate, preserving per-tenant order.
    queue_capacity:
        Bound of each shard's batch queue — the backpressure knob.
        Producers block in :meth:`submit` once their tenant's shard is
        this far behind.
    config / sample_rate_hz / detector:
        Defaults for detectors built at registration (overridable per
        tenant); ``detector`` names a detector-zoo member
        (``repro.detectors``), ``None`` meaning the paper's KDE path.
    keep_blocks:
        Keep every processed :class:`DetectionBlock` on the tenant state
        (the load-generator / equivalence-test mode).  A long-running
        service would set this ``False`` and act on
        :attr:`TenantState.detector` instead.
    """

    def __init__(
        self,
        *,
        n_workers: int = 4,
        queue_capacity: int = 64,
        config: Optional[MDConfig] = None,
        sample_rate_hz: float = 4.0,
        keep_blocks: bool = True,
        detector: Optional[object] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self._config = config if config is not None else MDConfig()
        self._rate = float(sample_rate_hz)
        self._detector = detector
        self._keep_blocks = bool(keep_blocks)
        self._tenants: Dict[str, TenantState] = {}
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.stats = RouterStats()
        self._queues: List["queue.Queue"] = [
            queue.Queue(maxsize=queue_capacity) for _ in range(n_workers)
        ]
        # One submit lock per shard: submit() holds its shard's lock across
        # the closed-recheck and the q.put, and close() cycles every lock
        # after setting _closed, so no batch can land on a queue whose
        # worker has already been told to shut down.
        self._submit_locks = [threading.Lock() for _ in self._queues]
        self._close_lock = threading.Lock()
        self._failure: Optional[BaseException] = None
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(q,),
                name=f"ingest-worker-{i}",
                daemon=True,
            )
            for i, q in enumerate(self._queues)
        ]
        for w in self._workers:
            w.start()

    # ------------------------------------------------------------------ #
    @property
    def n_workers(self) -> int:
        return len(self._queues)

    @property
    def tenants(self) -> List[str]:
        with self._lock:
            return list(self._tenants.keys())

    def tenant_state(self, tenant: str) -> TenantState:
        with self._lock:
            return self._tenants[tenant]

    def _check_failure(self) -> None:
        if self._failure is not None:
            raise RuntimeError(
                "an ingest worker failed; the router is unusable"
            ) from self._failure

    # ------------------------------------------------------------------ #
    def register(
        self,
        tenant: str,
        stream_ids: Sequence[str],
        *,
        config: Optional[MDConfig] = None,
        sample_rate_hz: Optional[float] = None,
        detector: Optional[object] = None,
    ) -> TenantState:
        """Register an office, assigning it to the next shard round-robin.

        ``detector`` overrides the router's default zoo member for this
        tenant, so one router can host heterogeneous per-tenant detectors
        (each tenant's engine is private state on its own shard).
        """
        self._check_failure()
        if self._closed:
            raise RuntimeError("router is closed")
        with self._lock:
            if tenant in self._tenants:
                raise ValueError(f"tenant {tenant!r} is already registered")
            shard = len(self._tenants) % len(self._queues)
            state = TenantState(
                tenant=tenant,
                shard=shard,
                detector=OnlineDetector(
                    stream_ids,
                    config if config is not None else self._config,
                    sample_rate_hz=(
                        sample_rate_hz
                        if sample_rate_hz is not None
                        else self._rate
                    ),
                    detector=(
                        detector if detector is not None else self._detector
                    ),
                ),
            )
            self._tenants[tenant] = state
            with self._stats_lock:
                self.stats.n_tenants += 1
            return state

    def submit(self, batch: SampleBatch) -> None:
        """Enqueue one batch; blocks when the tenant's shard queue is full.

        Raises :class:`RuntimeError` if the router is closed (or closes
        concurrently) and re-raises the first worker failure, so a batch
        never lands on a queue nobody will consume.
        """
        self._check_failure()
        if self._closed:
            raise RuntimeError("router is closed")
        with self._lock:
            state = self._tenants.get(batch.tenant)
        if state is None:
            raise KeyError(
                f"tenant {batch.tenant!r} is not registered with this router"
            )
        q = self._queues[state.shard]
        # Re-check under the shard's submit lock: close() sets _closed and
        # then cycles this lock, so either we enqueue before close() starts
        # draining, or we observe _closed and raise — never a put onto a
        # queue whose worker has exited (which would hang a later drain()).
        with self._submit_locks[state.shard]:
            if self._closed:
                raise RuntimeError("router is closed")
            q.put((state, batch))
            depth = q.qsize()
        with self._stats_lock:
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
            self.stats.batches_submitted += 1

    def drain(self) -> None:
        """Block until every submitted batch has been fully processed.

        After :meth:`close`, draining is a deterministic no-op (everything
        was already flushed); a recorded worker failure is re-raised either
        way.  Safe to call repeatedly.
        """
        if self._closed:
            self._check_failure()
            return
        for q in self._queues:
            q.join()
        self._check_failure()

    def close(self) -> None:
        """Drain, stop the workers, and finalize every tenant's detector.

        Idempotent — but if a worker failed, *every* call re-raises that
        failure rather than only the first, so callers cannot miss it.
        """
        with self._close_lock:
            if not self._closed:
                self._closed = True
                # Fence: after this, no submit() can be between its closed
                # re-check and its q.put, so the queues only shrink.
                for lock in self._submit_locks:
                    with lock:
                        pass
                try:
                    for q in self._queues:
                        q.join()
                finally:
                    for q in self._queues:
                        q.put(_SHUTDOWN)
                    for w in self._workers:
                        w.join()
                for state in self._tenants.values():
                    state.detector.finalize()
        self._check_failure()

    def __enter__(self) -> "IngestRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            # Already failing: best-effort shutdown without masking the
            # original exception.
            try:
                self.close()
            except RuntimeError:
                pass

    # ------------------------------------------------------------------ #
    def _worker_loop(self, q: "queue.Queue") -> None:
        while True:
            item = q.get()
            if item is _SHUTDOWN:
                q.task_done()
                return
            state, batch = item
            try:
                if self._failure is None:
                    block = state.detector.process_block(
                        batch.times, batch.samples
                    )
                    if self._keep_blocks:
                        state.blocks.append(block)
                    state.n_batches += 1
                    state.n_samples += batch.n_samples
                    with self._stats_lock:
                        self.stats.batches_processed += 1
                        self.stats.samples_processed += batch.n_samples
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with self._stats_lock:
                    if self._failure is None:
                        self._failure = exc
            finally:
                q.task_done()

"""Multi-tenant ingestion: many offices, sharded workers, bounded queues.

:class:`IngestRouter` is the front-end the north-star service shape calls
for: every office (*tenant*) owns an independent
:class:`~repro.streaming.detector.OnlineDetector`, tenants are assigned
round-robin to a fixed worker shard at registration, and each shard is one
worker thread consuming a bounded :class:`queue.Queue`.  The design gives
three guarantees:

* **per-tenant FIFO** — a tenant's batches are processed by exactly one
  worker in submission order, so its decision stream is never reordered
  (batches of *different* tenants on different shards may interleave
  freely, which is fine — their detectors share no state);
* **backpressure** — :meth:`IngestRouter.submit` blocks once the target
  shard's queue holds ``queue_capacity`` batches, so a slow shard
  throttles its producers instead of buffering unboundedly;
* **clean drain/flush** — :meth:`IngestRouter.drain` blocks until every
  submitted batch is fully processed, and :meth:`IngestRouter.close`
  drains, stops the workers, and closes every tenant's open variation
  window (:meth:`~repro.streaming.detector.OnlineDetector.finalize`), so
  shutdown never drops work in flight.

Worker exceptions (e.g. out-of-order timestamps from a misbehaving
source) are captured and re-raised on the submitting/draining thread, not
swallowed in the worker.

Lifecycle edges are deterministic: ``submit()`` after (or racing with)
``close()`` raises ``RuntimeError`` — it can never slip a batch onto a
queue whose worker has already exited, which would make a later
``drain()`` hang forever on ``Queue.join`` — ``drain()`` after ``close()``
is a no-op, repeated ``close()`` is idempotent, and once a worker has
failed *every* subsequent ``submit``/``drain``/``close``/``register``
re-raises the failure instead of silently doing nothing.

Failure policies
----------------

What happens when processing a batch *fails* is configurable
(``failure_policy``):

* ``"fail_fast"`` (default, the historical behaviour): the failure is
  recorded and re-raised on every subsequent call — zero overhead on the
  happy path;
* ``"restart_shard"``: the shard's tenants are rebuilt from their last
  per-batch checkpoints (:meth:`OnlineDetector.snapshot` after every
  successful batch) and the failed batch is retried, up to
  ``max_shard_restarts`` restarts per shard.  Because checkpoints are
  bit-preserving, a restarted shard's decision stream is **bitwise
  identical** to one that never died;
* ``"quarantine"``: the failing *tenant* is isolated — its batch (and
  every later one) is recorded as a :class:`DeadLetter` on the tenant
  state instead of processed, so one poison tenant cannot take down its
  shard neighbours.

Restart/quarantine/dead-letter counts surface in :class:`RouterStats`;
injected shard deaths (``repro.reliability``'s ``ROUTER_SHARD_DEATH``
point) flow through exactly the same policy code as real failures.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.config import MDConfig
from ..reliability.faults import ROUTER_SHARD_DEATH, as_injector
from .detector import DetectionBlock, OnlineDetector
from .source import SampleBatch

__all__ = [
    "IngestRouter",
    "RouterStats",
    "TenantState",
    "DeadLetter",
    "FAILURE_POLICIES",
]

#: Recognised ``failure_policy`` values, in documentation order.
FAILURE_POLICIES = ("fail_fast", "restart_shard", "quarantine")

_SHUTDOWN = object()


@dataclass
class RouterStats:
    """Counters describing one router's lifetime.

    ``submitted == processed`` after a successful :meth:`IngestRouter.drain`
    (nothing in flight); ``max_queue_depth`` reaching ``queue_capacity``
    means backpressure actually engaged.  The reliability counters stay
    empty under the default ``fail_fast`` policy: ``shard_restarts`` /
    ``shard_quarantines`` count recovery events per shard index, and
    ``dead_letters`` counts rejected batches per tenant (the batches
    themselves are kept on :attr:`TenantState.dead_letters`).
    """

    n_tenants: int = 0
    batches_submitted: int = 0
    batches_processed: int = 0
    samples_processed: int = 0
    max_queue_depth: int = 0
    tenants_quarantined: int = 0
    shard_restarts: Dict[int, int] = field(default_factory=dict)
    shard_quarantines: Dict[int, int] = field(default_factory=dict)
    dead_letters: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class DeadLetter:
    """One batch a quarantined tenant could not have processed."""

    tenant: str
    t_first: float
    t_last: float
    n_samples: int
    error: str


@dataclass
class TenantState:
    """Everything the router holds for one office."""

    tenant: str
    shard: int
    detector: OnlineDetector
    blocks: List[DetectionBlock] = field(default_factory=list)
    n_batches: int = 0
    n_samples: int = 0
    # Reliability state: the last per-batch checkpoint (populated only
    # under the restart_shard policy), how many times this tenant's
    # detector was rebuilt from it, and the quarantine record.
    checkpoint: Optional[Dict[str, Any]] = None
    restores: int = 0
    quarantined: bool = False
    dead_letters: List[DeadLetter] = field(default_factory=list)

    def concatenated(self) -> DetectionBlock:
        """The tenant's whole decision stream as one block."""
        if not self.blocks:
            empty = np.empty(0)
            return DetectionBlock(
                times=empty,
                std_sums=empty.copy(),
                decisions=np.empty(0, dtype=np.int8),
                thresholds=empty.copy(),
                durations=empty.copy(),
            )
        zone_scores = zone_occupancy = None
        if all(b.zone_scores is not None for b in self.blocks):
            zone_scores = np.concatenate(
                [b.zone_scores for b in self.blocks]
            )
            zone_occupancy = np.concatenate(
                [b.zone_occupancy for b in self.blocks]
            )
        return DetectionBlock(
            times=np.concatenate([b.times for b in self.blocks]),
            std_sums=np.concatenate([b.std_sums for b in self.blocks]),
            decisions=np.concatenate([b.decisions for b in self.blocks]),
            thresholds=np.concatenate([b.thresholds for b in self.blocks]),
            durations=np.concatenate([b.durations for b in self.blocks]),
            zone_scores=zone_scores,
            zone_occupancy=zone_occupancy,
        )


class IngestRouter:
    """Route sample batches from many offices to sharded detector workers.

    Parameters
    ----------
    n_workers:
        Worker shard count.  Tenants are assigned round-robin at
        registration and never migrate, preserving per-tenant order.
    queue_capacity:
        Bound of each shard's batch queue — the backpressure knob.
        Producers block in :meth:`submit` once their tenant's shard is
        this far behind.
    config / sample_rate_hz / detector:
        Defaults for detectors built at registration (overridable per
        tenant); ``detector`` names a detector-zoo member
        (``repro.detectors``), ``None`` meaning the paper's KDE path.
    keep_blocks:
        Keep every processed :class:`DetectionBlock` on the tenant state
        (the load-generator / equivalence-test mode).  A long-running
        service would set this ``False`` and act on
        :attr:`TenantState.detector` instead.
    failure_policy:
        What a batch-processing failure does: ``"fail_fast"`` (record and
        re-raise — the default), ``"restart_shard"`` (rebuild the shard's
        tenants from their last checkpoints and retry, up to
        ``max_shard_restarts`` per shard) or ``"quarantine"`` (isolate
        the failing tenant, dead-lettering its batches).
    max_shard_restarts:
        Per-shard restart budget under ``restart_shard``; once exhausted
        the shard fails fast.
    faults:
        Optional :class:`~repro.reliability.FaultPlan` /
        :class:`~repro.reliability.FaultInjector` — enables the
        ``router.shard_death`` injection point, which fires *after* a
        batch is computed but before it is recorded, so recovery must
        genuinely re-derive the batch from checkpoints.
    """

    def __init__(
        self,
        *,
        n_workers: int = 4,
        queue_capacity: int = 64,
        config: Optional[MDConfig] = None,
        sample_rate_hz: float = 4.0,
        keep_blocks: bool = True,
        detector: Optional[object] = None,
        failure_policy: str = "fail_fast",
        max_shard_restarts: int = 3,
        faults: Optional[object] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {failure_policy!r}"
            )
        if max_shard_restarts < 0:
            raise ValueError("max_shard_restarts must be >= 0")
        self._config = config if config is not None else MDConfig()
        self._rate = float(sample_rate_hz)
        self._detector = detector
        self._keep_blocks = bool(keep_blocks)
        self._policy = failure_policy
        self._max_shard_restarts = int(max_shard_restarts)
        self._faults = as_injector(faults)
        self._tenants: Dict[str, TenantState] = {}
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.stats = RouterStats()
        self._queues: List["queue.Queue"] = [
            queue.Queue(maxsize=queue_capacity) for _ in range(n_workers)
        ]
        # One submit lock per shard: submit() holds its shard's lock across
        # the closed-recheck and the q.put, and close() cycles every lock
        # after setting _closed, so no batch can land on a queue whose
        # worker has already been told to shut down.
        self._submit_locks = [threading.Lock() for _ in self._queues]
        self._close_lock = threading.Lock()
        self._failure: Optional[BaseException] = None
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(i, q),
                name=f"ingest-worker-{i}",
                daemon=True,
            )
            for i, q in enumerate(self._queues)
        ]
        for w in self._workers:
            w.start()

    # ------------------------------------------------------------------ #
    @property
    def n_workers(self) -> int:
        return len(self._queues)

    @property
    def tenants(self) -> List[str]:
        with self._lock:
            return list(self._tenants.keys())

    def tenant_state(self, tenant: str) -> TenantState:
        with self._lock:
            return self._tenants[tenant]

    def _check_failure(self) -> None:
        if self._failure is not None:
            raise RuntimeError(
                "an ingest worker failed; the router is unusable"
            ) from self._failure

    # ------------------------------------------------------------------ #
    def register(
        self,
        tenant: str,
        stream_ids: Sequence[str],
        *,
        config: Optional[MDConfig] = None,
        sample_rate_hz: Optional[float] = None,
        detector: Optional[object] = None,
        zones: Optional[object] = None,
        restore_from: Optional[Dict[str, Any]] = None,
    ) -> TenantState:
        """Register an office, assigning it to the next shard round-robin.

        ``detector`` overrides the router's default zoo member for this
        tenant, so one router can host heterogeneous per-tenant detectors
        (each tenant's engine is private state on its own shard).
        ``zones`` hosts a per-tenant
        :class:`~repro.zones.estimator.ZoneEngine` next to the detector —
        engines are stateful, so every tenant needs its own instance.

        ``restore_from`` resumes the tenant mid-stream from an
        :meth:`OnlineDetector.snapshot` checkpoint (e.g. one taken by
        :meth:`checkpoint_tenants` in a previous router's life); the
        snapshot is self-describing, so ``config`` / ``sample_rate_hz`` /
        ``detector`` / ``zones`` must be left unset and ``stream_ids``
        must match the checkpointed ids.
        """
        self._check_failure()
        if self._closed:
            raise RuntimeError("router is closed")
        if restore_from is not None:
            if (
                config is not None
                or sample_rate_hz is not None
                or detector is not None
                or zones is not None
            ):
                raise ValueError(
                    "restore_from carries config/rate/detector itself; do "
                    "not combine it with explicit overrides"
                )
            online = OnlineDetector.from_snapshot(restore_from)
            if online.stream_ids != list(stream_ids):
                raise ValueError(
                    f"checkpoint stream ids {online.stream_ids} do not "
                    f"match the registration's {list(stream_ids)}"
                )
        else:
            online = OnlineDetector(
                stream_ids,
                config if config is not None else self._config,
                sample_rate_hz=(
                    sample_rate_hz
                    if sample_rate_hz is not None
                    else self._rate
                ),
                detector=(
                    detector if detector is not None else self._detector
                ),
                zones=zones,
            )
        with self._lock:
            if tenant in self._tenants:
                raise ValueError(f"tenant {tenant!r} is already registered")
            shard = len(self._tenants) % len(self._queues)
            state = TenantState(tenant=tenant, shard=shard, detector=online)
            if self._policy == "restart_shard":
                # Seed the recovery point: a shard death before the
                # tenant's first successful batch restores to "freshly
                # registered" (or to the restore_from point).
                state.checkpoint = online.snapshot()
            self._tenants[tenant] = state
            with self._stats_lock:
                self.stats.n_tenants += 1
            return state

    def checkpoint_tenants(self) -> Dict[str, Dict[str, Any]]:
        """Drain, then snapshot every tenant's detector mid-stream.

        Returns ``{tenant: snapshot}`` suitable for ``register(...,
        restore_from=...)`` on a fresh router.  Unlike :meth:`close` this
        does **not** finalize open variation windows, so a restored
        router continues the streams bitwise-identically.
        """
        if not self._closed:
            self.drain()
        with self._lock:
            states = list(self._tenants.values())
        return {state.tenant: state.detector.snapshot() for state in states}

    def submit(self, batch: SampleBatch) -> None:
        """Enqueue one batch; blocks when the tenant's shard queue is full.

        Raises :class:`RuntimeError` if the router is closed (or closes
        concurrently) and re-raises the first worker failure, so a batch
        never lands on a queue nobody will consume.
        """
        self._check_failure()
        if self._closed:
            raise RuntimeError("router is closed")
        with self._lock:
            state = self._tenants.get(batch.tenant)
        if state is None:
            raise KeyError(
                f"tenant {batch.tenant!r} is not registered with this router"
            )
        q = self._queues[state.shard]
        # Re-check under the shard's submit lock: close() sets _closed and
        # then cycles this lock, so either we enqueue before close() starts
        # draining, or we observe _closed and raise — never a put onto a
        # queue whose worker has exited (which would hang a later drain()).
        with self._submit_locks[state.shard]:
            if self._closed:
                raise RuntimeError("router is closed")
            q.put((state, batch))
            depth = q.qsize()
        with self._stats_lock:
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
            self.stats.batches_submitted += 1

    def drain(self) -> None:
        """Block until every submitted batch has been fully processed.

        After :meth:`close`, draining is a deterministic no-op (everything
        was already flushed); a recorded worker failure is re-raised either
        way.  Safe to call repeatedly.
        """
        if self._closed:
            self._check_failure()
            return
        for q in self._queues:
            q.join()
        self._check_failure()

    def close(self) -> None:
        """Drain, stop the workers, and finalize every tenant's detector.

        Idempotent — but if a worker failed, *every* call re-raises that
        failure rather than only the first, so callers cannot miss it.
        """
        with self._close_lock:
            if not self._closed:
                self._closed = True
                # Fence: after this, no submit() can be between its closed
                # re-check and its q.put, so the queues only shrink.
                for lock in self._submit_locks:
                    with lock:
                        pass
                try:
                    for q in self._queues:
                        q.join()
                finally:
                    for q in self._queues:
                        q.put(_SHUTDOWN)
                    for w in self._workers:
                        w.join()
                for state in self._tenants.values():
                    state.detector.finalize()
        self._check_failure()

    def __enter__(self) -> "IngestRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            # Already failing: best-effort shutdown without masking the
            # original exception.
            try:
                self.close()
            except RuntimeError:
                pass

    # ------------------------------------------------------------------ #
    def _worker_loop(self, shard: int, q: "queue.Queue") -> None:
        while True:
            item = q.get()
            if item is _SHUTDOWN:
                q.task_done()
                return
            state, batch = item
            try:
                if self._failure is None:
                    self._process_one(shard, state, batch)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with self._stats_lock:
                    if self._failure is None:
                        self._failure = exc
            finally:
                q.task_done()

    def _process_one(
        self, shard: int, state: TenantState, batch: SampleBatch
    ) -> None:
        """Process one batch under the router's failure policy."""
        if state.quarantined:
            self._dead_letter(state, batch, "tenant is quarantined")
            return
        while True:
            try:
                block = state.detector.process_block(
                    batch.times, batch.samples
                )
                if self._faults is not None:
                    # Fires *after* the compute: a recovered shard must
                    # re-derive this block from the checkpoint, which is
                    # what makes the restart path's bit-identity claim a
                    # real one.
                    spec = self._faults.fired(ROUTER_SHARD_DEATH)
                    if spec is not None:
                        self._faults.apply(spec)
            except BaseException as exc:  # noqa: BLE001 - policy decides
                if self._policy == "quarantine":
                    state.quarantined = True
                    self._dead_letter(state, batch, repr(exc))
                    with self._stats_lock:
                        self.stats.tenants_quarantined += 1
                        self.stats.shard_quarantines[shard] = (
                            self.stats.shard_quarantines.get(shard, 0) + 1
                        )
                    return
                if self._policy == "restart_shard":
                    with self._stats_lock:
                        used = self.stats.shard_restarts.get(shard, 0)
                        budget_left = used < self._max_shard_restarts
                        if budget_left:
                            self.stats.shard_restarts[shard] = used + 1
                    if budget_left:
                        self._restart_shard(shard)
                        continue
                raise
            break
        if self._keep_blocks:
            state.blocks.append(block)
        state.n_batches += 1
        state.n_samples += batch.n_samples
        if self._policy == "restart_shard":
            state.checkpoint = state.detector.snapshot()
        with self._stats_lock:
            self.stats.batches_processed += 1
            self.stats.samples_processed += batch.n_samples

    def _restart_shard(self, shard: int) -> None:
        """Rebuild every tenant on ``shard`` from its last checkpoint."""
        with self._lock:
            states = [
                s for s in self._tenants.values() if s.shard == shard
            ]
        for state in states:
            assert state.checkpoint is not None  # seeded at registration
            state.detector = OnlineDetector.from_snapshot(state.checkpoint)
            state.restores += 1

    def _dead_letter(
        self, state: TenantState, batch: SampleBatch, error: str
    ) -> None:
        times = np.asarray(batch.times, dtype=float)
        state.dead_letters.append(
            DeadLetter(
                tenant=state.tenant,
                t_first=float(times[0]) if times.size else float("nan"),
                t_last=float(times[-1]) if times.size else float("nan"),
                n_samples=batch.n_samples,
                error=error,
            )
        )
        with self._stats_lock:
            self.stats.dead_letters[state.tenant] = (
                self.stats.dead_letters.get(state.tenant, 0) + 1
            )

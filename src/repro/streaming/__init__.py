"""Incremental streaming detection engine.

The paper's movement-detection pipeline is inherently online — samples
arrive, a rolling std is updated, Rule 1 / Rule 2 fire in real time — yet
until this package the repo only ran it as offline replay of recorded days
(:meth:`~repro.core.system.FadewichSystem.replay_day`).  This package
extracts the detection kernel out of the replay loop into a true
incremental engine:

* :class:`~repro.streaming.detector.OnlineDetector` — bounded-state,
  batch-capable detection kernel: constant work per sample (independent of
  stream length), **bit-identical** to the columnar offline kernel
  (``online_std_sum_series`` + ``run_profile_grid`` +
  ``window_duration_series``) and to the per-sample
  :class:`~repro.core.movement.MovementDetector`, whatever the arrival
  batching (``tests/test_streaming_equivalence.py``);
* :class:`~repro.streaming.source.DayRecordingSource` /
  :func:`~repro.streaming.source.merge_by_time` — ``stream()``-style
  iterator sources replaying :class:`~repro.simulation.collector.DayRecording`
  traces as timestamped sample batches, and the multi-tenant load
  generator interleaving many tenants' batches in arrival order;
* :class:`~repro.streaming.router.IngestRouter` — the ingestion front-end
  multiplexing many concurrent offices: per-tenant detector state,
  round-robin sharded workers, bounded queues with backpressure, a clean
  drain/flush on shutdown that never reorders a tenant's decisions, and
  configurable failure policies (``fail_fast`` / ``restart_shard`` from
  per-batch checkpoints / ``quarantine`` with dead-letter records).

Every stateful piece checkpoints: ``snapshot()``/``restore()`` round-trip
the kernel's bounded state through JSON bit-exactly (see
:mod:`repro.reliability`), so a killed stream resumed from a checkpoint
is indistinguishable from one that never stopped.

:meth:`~repro.core.system.FadewichSystem.replay_day` is a thin client of
the same kernel: one recorded day is simply the whole stream delivered as
a single batch.
"""

from .detector import (
    DetectionBlock,
    OnlineDetector,
    OnlineProfile,
    OnlineStdSum,
    WindowTracker,
)
from .router import (
    FAILURE_POLICIES,
    DeadLetter,
    IngestRouter,
    RouterStats,
    TenantState,
)
from .source import DayRecordingSource, SampleBatch, StreamSource, merge_by_time

__all__ = [
    "DetectionBlock",
    "OnlineDetector",
    "OnlineProfile",
    "OnlineStdSum",
    "WindowTracker",
    "SampleBatch",
    "StreamSource",
    "DayRecordingSource",
    "merge_by_time",
    "IngestRouter",
    "RouterStats",
    "TenantState",
    "DeadLetter",
    "FAILURE_POLICIES",
]

"""The incremental detection kernel: Algorithm 1 over an unbounded stream.

Three bounded-state pieces compose :class:`OnlineDetector`:

* :class:`OnlineStdSum` — the rolling ``s_t`` series.  Keeps only the last
  ``window_samples - 1`` samples per stream as carry between batches, so
  per-sample work is constant in the stream length, while reproducing the
  offline :func:`~repro.core.movement.online_std_sum_series` (and hence
  the per-sample :class:`~repro.core.movement.StdSumTracker`) **bit for
  bit** — including the partial-window head at stream start, whatever the
  arrival batching;
* :class:`OnlineProfile` — the KDE normal profile with batch updates,
  replicating :class:`~repro.core.movement.NormalProfile` arithmetic
  exactly (same :class:`~repro.ml.kde.GaussianKDE` windows, same
  warm-started chained Newton re-solves through
  :func:`~repro.ml.kde.mixture_quantiles`), but consuming whole segments
  between profile-batch boundaries with vectorised threshold compares;
* :class:`WindowTracker` — the variation-window bookkeeping (open window,
  merge gap, per-step ``dW_t``), the same automaton as
  :class:`~repro.core.movement.MovementDetector` and the closed form of
  :func:`~repro.core.movement.window_duration_series`.

Bit-exactness notes
-------------------

The offline reference computes the partial-window head with per-instant
``np.std`` over all samples so far and the full windows with ``np.std``
over ``sliding_window_view`` rows, accumulating streams left to right.
:class:`OnlineStdSum` performs the *same reductions on the same
contiguous memory layout*: the carry tail plus the incoming batch form
one contiguous per-stream array whose slices hold exactly the values the
offline column slices hold, so every ``np.std`` sees identical input in
identical order.  A ring buffer with wrap-around would present the same
values in rotated order and break bitwise equality of the pairwise
summation inside ``np.std`` — which is why the carry is materialised in
arrival order instead.

Per-sample cost is therefore O(``window_samples`` × ``n_streams``) — the
reduction itself — and independent of how many samples the stream has
already delivered; state is O(``window_samples`` × ``n_streams`` +
profile window).

Checkpoint/restore
------------------

Every piece exposes ``snapshot() -> dict`` / ``restore(state)``, and
:class:`OnlineDetector` additionally a :meth:`OnlineDetector.from_snapshot`
constructor.  Snapshots are plain JSON-serialisable dicts of the bounded
state — and because python's ``json`` round-trips every float64 exactly
(shortest-repr encode, exact decode, NaN/Infinity tokens included), a
detector restored from a JSON-serialised snapshot continues the stream
**bitwise identically** to one that was never interrupted, at any cut
point (partial-window head included).  That is the property the
reliability layer's kill/resume tests assert for every registered zoo
engine, and what makes router shard restarts provably lossless.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..core.config import MDConfig
from ..core.windows import VariationWindow
from ..ml.kde import GaussianKDE

__all__ = [
    "OnlineStdSum",
    "OnlineProfile",
    "WindowTracker",
    "DetectionBlock",
    "OnlineDetector",
]


class OnlineStdSum:
    """Streaming ``s_t``: the std-sum series with bounded carry state.

    Parameters
    ----------
    n_streams:
        Number of monitored RSSI streams (the column count of every batch).
    window_samples:
        Sliding-window length ``d`` seconds times the sampling rate.

    :meth:`extend` consumes a ``(m, n_streams)`` sample batch and returns
    the ``m`` new ``s_t`` values, NaN where the series is undefined (the
    very first sample of the stream — a standard deviation needs two
    points).  Concatenating the outputs over any batching of a stream is
    bit-identical to :func:`~repro.core.movement.online_std_sum_series`
    over the full sample matrix.
    """

    def __init__(self, n_streams: int, window_samples: int) -> None:
        if n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        if window_samples < 2:
            raise ValueError("window_samples must be >= 2")
        self._k = int(n_streams)
        self._w = int(window_samples)
        self._count = 0
        # Last min(count, w - 1) samples per stream, contiguous, in
        # arrival order — the carry that makes any batch boundary
        # invisible to the window arithmetic.
        self._tails: List[np.ndarray] = [
            np.empty(0) for _ in range(self._k)
        ]

    @property
    def window_samples(self) -> int:
        return self._w

    @property
    def n_streams(self) -> int:
        return self._k

    @property
    def samples_seen(self) -> int:
        """Total samples consumed since construction / :meth:`reset`."""
        return self._count

    def reset(self) -> None:
        self._count = 0
        self._tails = [np.empty(0) for _ in range(self._k)]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready bounded state: sample count + per-stream carry tails."""
        return {
            "count": self._count,
            "tails": [tail.tolist() for tail in self._tails],
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        """Overwrite the mutable state from a :meth:`snapshot` dict."""
        tails = state["tails"]
        if len(tails) != self._k:
            raise ValueError(
                f"snapshot holds {len(tails)} stream tails, expected {self._k}"
            )
        self._count = int(state["count"])
        self._tails = [
            np.ascontiguousarray(np.asarray(tail, dtype=float))
            for tail in tails
        ]

    def extend(self, matrix: np.ndarray) -> np.ndarray:
        """Consume one ``(m, n_streams)`` batch; return its ``s_t`` values."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self._k:
            raise ValueError(
                f"expected a (m, {self._k}) sample batch, got {matrix.shape}"
            )
        m = matrix.shape[0]
        out = np.full(m, np.nan)
        if m == 0:
            return out
        w = self._w
        c0 = self._count
        # Carry + batch: per stream one contiguous array whose slices are
        # exactly the offline column slices ending at each batch instant.
        exts = [
            np.concatenate([tail, np.ascontiguousarray(matrix[:, j])])
            for j, tail in enumerate(self._tails)
        ]
        lt = exts[0].shape[0] - m

        # Partial-window head (global fill levels 2 .. w-1): per-instant
        # np.std over every sample so far, streams accumulated left to
        # right — the same arithmetic as the offline partial head and the
        # per-sample tracker.  The carry holds the *entire* history here
        # (count <= w - 2 < w - 1), so ext[: lt + i + 1] is the full
        # stream prefix.
        head_lo = max(0, 1 - c0)
        head_hi = min(m, max(0, (w - 1) - c0))
        for i in range(head_lo, head_hi):
            total = 0.0
            for ext in exts:
                total += float(np.std(ext[: lt + i + 1]))
            out[i] = total

        # Full windows, vectorised per stream over the carry+batch array —
        # the same sliding_window_view reduction as the offline series.
        i0 = max(0, (w - 1) - c0)
        if i0 < m and lt + m >= w:
            acc: Optional[np.ndarray] = None
            for ext in exts:
                stds = np.std(sliding_window_view(ext, w), axis=1)
                acc = stds if acc is None else acc + stds
            out[i0:] = acc

        self._count = c0 + m
        nt = min(self._count, w - 1)
        self._tails = [np.ascontiguousarray(ext[-nt:]) for ext in exts]
        return out


class OnlineProfile:
    """Streaming KDE normal profile with batch updates.

    Replicates :class:`~repro.core.movement.NormalProfile` exactly — the
    initialisation KDE over the first ``init_samples`` observations, the
    ``(100 - alpha)``-th percentile threshold, the accept/reject batch
    update with ``drop_oldest = batch_size`` — while consuming whole
    value segments at once: between profile-batch boundaries the
    threshold is constant, so the anomaly compares vectorise.  Threshold
    re-solves warm-start from the chain's previous threshold via
    :meth:`~repro.ml.kde.GaussianKDE.percentile` (the shared
    safeguarded-Newton engine), exactly like the scalar profile.
    """

    def __init__(self, config: MDConfig, init_samples: int) -> None:
        if init_samples < 2:
            raise ValueError("init_samples must be >= 2")
        self._config = config
        self._init_samples = int(init_samples)
        self._init_buffer: List[float] = []
        self._kde: Optional[GaussianKDE] = None
        self._threshold: Optional[float] = None
        self._pending: List[np.ndarray] = []
        self._pending_count = 0

    # ------------------------------------------------------------------ #
    @property
    def is_ready(self) -> bool:
        return self._kde is not None

    @property
    def threshold(self) -> Optional[float]:
        return self._threshold

    @property
    def kde(self) -> Optional[GaussianKDE]:
        return self._kde

    def _rebuild_threshold(self) -> None:
        assert self._kde is not None
        self._threshold = self._kde.percentile(
            100.0 - self._config.alpha, x0=self._threshold
        )

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready bounded state of the profile chain.

        The pending segments are stored concatenated: the profile only
        ever reads them through ``np.concatenate`` at a batch boundary,
        so restoring them as a single segment is value- (hence bitwise-)
        equivalent.  The KDE is captured as its data window plus the
        resolved float bandwidth — restoring with the explicit bandwidth
        sidesteps any re-derivation.
        """
        pending = (
            np.concatenate(self._pending).tolist() if self._pending else []
        )
        return {
            "init_buffer": list(self._init_buffer),
            "kde": (
                None
                if self._kde is None
                else {
                    "data": self._kde.data.tolist(),
                    "bandwidth": self._kde.bandwidth,
                }
            ),
            "threshold": self._threshold,
            "pending": pending,
            "pending_count": self._pending_count,
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        """Overwrite the mutable state from a :meth:`snapshot` dict."""
        self._init_buffer = [float(v) for v in state["init_buffer"]]
        kde_state = state["kde"]
        if kde_state is None:
            self._kde = None
        else:
            self._kde = GaussianKDE(
                np.asarray(kde_state["data"], dtype=float),
                bandwidth=float(kde_state["bandwidth"]),
            )
        threshold = state["threshold"]
        self._threshold = None if threshold is None else float(threshold)
        pending = np.ascontiguousarray(
            np.asarray(state["pending"], dtype=float)
        )
        self._pending = [pending] if pending.size else []
        self._pending_count = int(state["pending_count"])

    # ------------------------------------------------------------------ #
    def extend(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Consume ``s_t`` values; return ``(decisions, thresholds)``.

        ``decisions`` is int8 per value: ``-1`` while the profile is
        initialising (the scalar path's ``None``), ``0`` normal, ``1``
        anomalous.  ``thresholds`` is the threshold in force *after* each
        observation (NaN while initialising) — the streaming
        :attr:`~repro.core.movement.OfflineMDResult.threshold_trace`.
        """
        values = np.ascontiguousarray(np.asarray(values, dtype=float).ravel())
        n = values.shape[0]
        decisions = np.full(n, -1, dtype=np.int8)
        thresholds = np.full(n, np.nan)
        pos = 0
        if not self.is_ready:
            take = min(self._init_samples - len(self._init_buffer), n)
            self._init_buffer.extend(float(v) for v in values[:take])
            pos = take
            if len(self._init_buffer) >= self._init_samples:
                self._kde = GaussianKDE(self._init_buffer)
                self._rebuild_threshold()
                thresholds[take - 1] = self._threshold
            else:
                return decisions, thresholds

        b = self._config.batch_size
        while pos < n:
            assert self._threshold is not None
            room = b - self._pending_count
            seg = values[pos : pos + room]
            flags = seg >= self._threshold
            decisions[pos : pos + seg.shape[0]] = flags
            thresholds[pos : pos + seg.shape[0]] = self._threshold
            self._pending.append(seg)
            self._pending_count += seg.shape[0]
            pos += seg.shape[0]
            if self._pending_count >= b:
                batch = (
                    self._pending[0]
                    if len(self._pending) == 1
                    else np.concatenate(self._pending)
                )
                anomalous_in_batch = int(
                    np.count_nonzero(batch >= self._threshold)
                )
                if anomalous_in_batch / batch.shape[0] < self._config.tau:
                    assert self._kde is not None
                    self._kde = self._kde.updated(
                        batch, drop_oldest=batch.shape[0]
                    )
                    self._rebuild_threshold()
                    # The scalar path rebuilds while observing the batch's
                    # last value, so the trace shows the new threshold
                    # there already.
                    thresholds[pos - 1] = self._threshold
                self._pending = []
                self._pending_count = 0
        return decisions, thresholds


class WindowTracker:
    """Variation-window automaton: open/merge/close plus per-step ``dW_t``.

    The scalar bookkeeping of :class:`~repro.core.movement.MovementDetector`
    factored out so the streaming detector, the boundary tests and any
    other per-step consumer share one implementation: a window opens at
    the first anomalous instant, stays open through non-anomalous
    observations arriving within ``merge_gap_s`` of the last anomalous
    one, and closes (recording the completed
    :class:`~repro.core.windows.VariationWindow`) at the first observation
    arriving strictly later than the gap.
    """

    def __init__(self, merge_gap_s: float) -> None:
        self._gap = float(merge_gap_s)
        self._window_start: Optional[float] = None
        self._last_anomalous_t: Optional[float] = None
        self._completed: List[VariationWindow] = []

    # ------------------------------------------------------------------ #
    @property
    def window_start(self) -> Optional[float]:
        return self._window_start

    @property
    def completed_windows(self) -> List[VariationWindow]:
        return list(self._completed)

    def current_window(self, t: float) -> Optional[VariationWindow]:
        if self._window_start is None:
            return None
        return VariationWindow(self._window_start, t)

    def current_window_duration(self, t: float) -> float:
        if self._window_start is None:
            return 0.0
        return max(t - self._window_start, 0.0)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready automaton state: open window + completed windows."""
        return {
            "window_start": self._window_start,
            "last_anomalous_t": self._last_anomalous_t,
            "completed": [[w.t_start, w.t_end] for w in self._completed],
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        """Overwrite the mutable state from a :meth:`snapshot` dict."""
        start = state["window_start"]
        last = state["last_anomalous_t"]
        self._window_start = None if start is None else float(start)
        self._last_anomalous_t = None if last is None else float(last)
        self._completed = [
            VariationWindow(float(s), float(e)) for s, e in state["completed"]
        ]

    # ------------------------------------------------------------------ #
    def update(self, t: float, anomalous: bool) -> float:
        """Advance by one observation; return ``dW_t`` at ``t``."""
        if anomalous:
            if self._window_start is None:
                self._window_start = t
            self._last_anomalous_t = t
        elif (
            self._window_start is not None
            and self._last_anomalous_t is not None
            and (t - self._last_anomalous_t) > self._gap
        ):
            self._completed.append(
                VariationWindow(self._window_start, self._last_anomalous_t)
            )
            self._window_start = None
            self._last_anomalous_t = None
        if self._window_start is None:
            return 0.0
        return t - self._window_start

    def finalize(self) -> None:
        """Close any open window at the end of a stream."""
        if self._window_start is not None and self._last_anomalous_t is not None:
            self._completed.append(
                VariationWindow(self._window_start, self._last_anomalous_t)
            )
            self._window_start = None
            self._last_anomalous_t = None


@dataclass(frozen=True)
class DetectionBlock:
    """Everything the kernel derived from one consumed sample batch.

    Attributes
    ----------
    times:
        The batch timestamps.
    std_sums:
        ``s_t`` per instant (NaN where undefined).
    decisions:
        int8 per instant: ``-1`` initialising, ``0`` normal, ``1``
        anomalous.
    thresholds:
        Anomaly threshold in force after each instant (NaN while
        initialising).
    durations:
        ``dW_t`` per instant — the quantity driving the controller.
    zone_scores / zone_occupancy:
        Per-instant zone-occupancy inference (``repro.zones``) when the
        detector hosts a :class:`~repro.zones.estimator.ZoneEngine`;
        ``None`` otherwise.  ``zone_scores`` is ``(m, n_zones)`` (NaN in
        the calibration window), ``zone_occupancy`` int64 (``-1`` = no
        zone declared occupied).
    """

    times: np.ndarray
    std_sums: np.ndarray
    decisions: np.ndarray
    thresholds: np.ndarray
    durations: np.ndarray
    zone_scores: Optional[np.ndarray] = None
    zone_occupancy: Optional[np.ndarray] = None

    @property
    def n_samples(self) -> int:
        return int(self.times.shape[0])

    @property
    def anomalous(self) -> np.ndarray:
        """Boolean anomaly flags (initialising counts as not anomalous)."""
        return self.decisions == 1


class OnlineDetector:
    """The streaming MD kernel: Algorithm 1 with bounded state.

    Consumes timestamped multi-stream sample batches (of any size,
    including single samples) and produces per-instant ``s_t``, anomaly
    decisions, thresholds and window durations — bit-identical to the
    columnar offline kernel over the concatenated stream and to the
    per-sample :class:`~repro.core.movement.MovementDetector`, whatever
    the arrival batching.

    Parameters
    ----------
    stream_ids:
        Monitored stream ids, fixing the column order of sample batches.
    config:
        MD parameters.
    sample_rate_hz:
        Sampling rate of the stream (window sizes derive from it exactly
        like the scalar detector's).
    detector:
        Optional detector-zoo member (``repro.detectors``): its
        ``streaming_engine`` replaces the KDE :class:`OnlineProfile` as
        the decision engine behind the shared std-sum kernel and window
        tracker.  ``None`` keeps the paper's detector.
    zones:
        Optional :class:`~repro.zones.estimator.ZoneEngine` (from
        :meth:`~repro.zones.estimator.ZoneOccupancyEstimator.
        streaming_engine`): the detector feeds it every consumed batch
        and attaches its per-instant zone scores/occupancy to each
        :class:`DetectionBlock`.  The engine must have been built for the
        same stream ids in the same order.
    """

    def __init__(
        self,
        stream_ids: Sequence[str],
        config: Optional[MDConfig] = None,
        sample_rate_hz: float = 4.0,
        *,
        detector: Optional[object] = None,
        zones: Optional[object] = None,
    ) -> None:
        if sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        self._stream_ids = list(stream_ids)
        if not self._stream_ids:
            raise ValueError("at least one stream id is required")
        self._config = config if config is not None else MDConfig()
        self._rate = float(sample_rate_hz)
        self._detector = detector
        window_samples = max(
            int(round(self._config.std_window_s * self._rate)), 2
        )
        init_samples = max(
            int(round(self._config.profile_init_s * self._rate)), 2
        )
        self._std = OnlineStdSum(len(self._stream_ids), window_samples)
        if detector is None:
            self._profile = OnlineProfile(self._config, init_samples)
        else:
            self._profile = detector.streaming_engine(self._config, init_samples)
        if zones is not None and list(zones.stream_ids) != self._stream_ids:
            raise ValueError(
                "zone engine stream ids do not match the detector's"
            )
        self._zones = zones
        self._windows = WindowTracker(self._config.merge_gap_s)
        self._last_t: Optional[float] = None

    # ------------------------------------------------------------------ #
    @property
    def stream_ids(self) -> List[str]:
        return list(self._stream_ids)

    @property
    def config(self) -> MDConfig:
        return self._config

    @property
    def profile(self):
        """The decision engine (``OnlineProfile`` or a zoo engine)."""
        return self._profile

    @property
    def detector(self) -> Optional[object]:
        """The zoo member driving decisions (``None`` = the KDE path)."""
        return self._detector

    @property
    def zones(self) -> Optional[object]:
        """The hosted zone-occupancy engine (``None`` = detection only)."""
        return self._zones

    @property
    def samples_seen(self) -> int:
        return self._std.samples_seen

    @property
    def completed_windows(self) -> List[VariationWindow]:
        return self._windows.completed_windows

    def current_window(self, t: float) -> Optional[VariationWindow]:
        return self._windows.current_window(t)

    def current_window_duration(self, t: float) -> float:
        """``dW_t``: duration of the open variation window at ``t`` (0 if none)."""
        return self._windows.current_window_duration(t)

    def finalize(self) -> None:
        """Close any open variation window at the end of the stream."""
        self._windows.finalize()

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """One JSON-ready checkpoint of the whole kernel.

        Self-describing: carries the construction parameters (stream ids,
        config, rate, detector spec) alongside the mutable state of every
        sub-engine, so :meth:`from_snapshot` rebuilds an equivalent
        detector from the dict alone.  Round-tripping the dict through
        ``json`` preserves every float bit-for-bit, so the restored
        detector's future output is bitwise identical to this one's.
        """
        engine = self._profile
        if not callable(getattr(engine, "snapshot", None)):
            raise TypeError(
                f"decision engine {type(engine).__name__} does not implement "
                "snapshot(); checkpointing requires snapshot()/restore()"
            )
        if self._detector is None:
            det_spec = None
        else:
            det_spec = {
                "name": self._detector.name,
                "config": dataclasses.asdict(self._detector),
            }
        return {
            "format": 1,
            "stream_ids": list(self._stream_ids),
            "sample_rate_hz": self._rate,
            "config": dataclasses.asdict(self._config),
            "detector": det_spec,
            "std": self._std.snapshot(),
            "engine": engine.snapshot(),
            "windows": self._windows.snapshot(),
            "last_t": self._last_t,
            "zones": (
                None if self._zones is None else self._zones.snapshot()
            ),
        }

    @classmethod
    def from_snapshot(cls, state: Mapping[str, Any]) -> "OnlineDetector":
        """Rebuild a detector mid-stream from a :meth:`snapshot` dict."""
        fmt = state.get("format")
        if fmt != 1:
            raise ValueError(f"unsupported detector snapshot format: {fmt!r}")
        detector: Optional[object] = None
        det_spec = state["detector"]
        if det_spec is not None:
            from ..detectors import get_detector  # local: optional layer

            detector = type(get_detector(det_spec["name"]))(
                **det_spec["config"]
            )
        zones: Optional[object] = None
        zones_state = state.get("zones")
        if zones_state is not None:
            from ..zones.estimator import ZoneEngine  # local: optional layer

            zones = ZoneEngine.from_snapshot(zones_state)
        inst = cls(
            state["stream_ids"],
            MDConfig(**state["config"]),
            float(state["sample_rate_hz"]),
            detector=detector,
            zones=zones,
        )
        engine = inst._profile
        if not callable(getattr(engine, "restore", None)):
            raise TypeError(
                f"decision engine {type(engine).__name__} does not implement "
                "restore(); checkpointing requires snapshot()/restore()"
            )
        inst._std.restore(state["std"])
        engine.restore(state["engine"])
        inst._windows.restore(state["windows"])
        last_t = state["last_t"]
        inst._last_t = None if last_t is None else float(last_t)
        return inst

    # ------------------------------------------------------------------ #
    def process_block(
        self, times: np.ndarray, matrix: np.ndarray
    ) -> DetectionBlock:
        """Consume one timestamped sample batch.

        ``times`` is a strictly increasing ``(m,)`` array continuing the
        stream (every timestamp must be later than everything already
        consumed); ``matrix`` is the ``(m, n_streams)`` sample block in
        ``stream_ids`` order.
        """
        times = np.asarray(times, dtype=float)
        matrix = np.asarray(matrix, dtype=float)
        if times.ndim != 1 or matrix.ndim != 2:
            raise ValueError("times must be (m,) and matrix (m, n_streams)")
        if times.shape[0] != matrix.shape[0]:
            raise ValueError("times and matrix must have equal length")
        m = times.shape[0]
        if m == 0:
            empty = np.empty(0)
            zone_scores = zone_occupancy = None
            if self._zones is not None:
                zone_scores = np.full((0, self._zones.zone_map.n_zones), np.nan)
                zone_occupancy = np.empty(0, dtype=np.int64)
            return DetectionBlock(
                times=times,
                std_sums=empty,
                decisions=np.empty(0, dtype=np.int8),
                thresholds=empty.copy(),
                durations=empty.copy(),
                zone_scores=zone_scores,
                zone_occupancy=zone_occupancy,
            )
        first = float(times[0])
        if (self._last_t is not None and first <= self._last_t) or (
            m > 1 and bool(np.any(np.diff(times) <= 0))
        ):
            raise ValueError(
                "samples must arrive in strictly increasing time order"
            )

        std_sums = self._std.extend(matrix)
        decisions = np.full(m, -1, dtype=np.int8)
        thresholds = np.full(m, np.nan)
        defined = ~np.isnan(std_sums)
        if defined.any():
            d, th = self._profile.extend(std_sums[defined])
            decisions[defined] = d
            thresholds[defined] = th

        durations = np.empty(m)
        tracker = self._windows
        flags = (decisions == 1).tolist()
        for i, (t, f) in enumerate(zip(times.tolist(), flags)):
            durations[i] = tracker.update(t, f)
        self._last_t = float(times[-1])
        zone_scores = zone_occupancy = None
        if self._zones is not None:
            zone_grid = self._zones.extend(matrix)
            zone_scores = zone_grid.scores
            zone_occupancy = zone_grid.occupied
        return DetectionBlock(
            times=times,
            std_sums=std_sums,
            decisions=decisions,
            thresholds=thresholds,
            durations=durations,
            zone_scores=zone_scores,
            zone_occupancy=zone_occupancy,
        )

    def process(self, t: float, sample: Mapping[str, float]) -> Optional[bool]:
        """Consume one sample dict; return the anomaly decision (or ``None``).

        The per-sample convenience entry point with the exact signature
        and semantics of :meth:`MovementDetector.process` — ``None``
        while the std window or the normal profile is still initialising.
        """
        row = np.array(
            [[float(sample[sid]) for sid in self._stream_ids]], dtype=float
        )
        block = self.process_block(np.asarray([t], dtype=float), row)
        decision = int(block.decisions[0])
        if decision < 0:
            return None
        return bool(decision)

"""Stream sources: recorded days replayed as timestamped sample batches.

The ingestion side of the streaming engine speaks one currency — the
:class:`SampleBatch`: a tenant id, a strictly increasing timestamp vector
and the matching ``(m, n_streams)`` sample block.  A :class:`StreamSource`
is anything that yields them in time order; :class:`DayRecordingSource`
adapts a recorded :class:`~repro.simulation.collector.DayRecording` (or a
bare :class:`~repro.radio.trace.RssiTrace`), chopping it into
fixed-size batches the way a live collector would deliver them, and
:func:`merge_by_time` interleaves many tenants' sources into one global
arrival sequence — the multi-tenant load generator driving
:class:`~repro.streaming.router.IngestRouter` in the example and the
benchmark.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from ..radio.trace import RssiTrace
from ..reliability.faults import SOURCE_DROP_BATCH, as_injector
from ..simulation.collector import DayRecording

__all__ = [
    "SampleBatch",
    "StreamSource",
    "DayRecordingSource",
    "merge_by_time",
]


@dataclass(frozen=True)
class SampleBatch:
    """One timestamped multi-stream sample batch from one tenant.

    Attributes
    ----------
    tenant:
        Office id the batch belongs to.
    times:
        Strictly increasing ``(m,)`` timestamps.
    samples:
        ``(m, n_streams)`` RSSI block, columns in the source's
        ``stream_ids`` order.
    """

    tenant: str
    times: np.ndarray
    samples: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "times", np.asarray(self.times, dtype=float)
        )
        object.__setattr__(
            self, "samples", np.asarray(self.samples, dtype=float)
        )
        if self.times.ndim != 1 or self.samples.ndim != 2:
            raise ValueError("times must be (m,) and samples (m, n_streams)")
        if self.times.shape[0] != self.samples.shape[0]:
            raise ValueError("times and samples must have equal length")
        if self.times.shape[0] == 0:
            raise ValueError("a sample batch cannot be empty")
        if self.times.shape[0] > 1 and bool(
            np.any(np.diff(self.times) <= 0)
        ):
            raise ValueError("timestamps must be strictly increasing")

    @property
    def n_samples(self) -> int:
        return int(self.times.shape[0])

    @property
    def t_first(self) -> float:
        return float(self.times[0])

    @property
    def t_last(self) -> float:
        return float(self.times[-1])


class StreamSource:
    """Iterator over a tenant's :class:`SampleBatch` sequence, in time order.

    Subclasses yield batches whose timestamps strictly increase across the
    whole iteration (batch ``i+1`` starts after batch ``i`` ends).  A
    source is single-pass, like any generator-backed feed.
    """

    tenant: str
    stream_ids: List[str]

    def __iter__(self) -> Iterator[SampleBatch]:  # pragma: no cover
        raise NotImplementedError


class DayRecordingSource(StreamSource):
    """Replay one recorded day as a stream of fixed-size sample batches.

    Parameters
    ----------
    tenant:
        Office id stamped on every batch.
    day:
        A :class:`~repro.simulation.collector.DayRecording` or a bare
        :class:`~repro.radio.trace.RssiTrace`.
    stream_ids:
        Sensor subset (and column order) to replay; defaults to all
        streams of the trace in recording order.
    batch_samples:
        Samples per batch (the last batch may be shorter).  ``1`` replays
        the day sample by sample, the way a live collector at 4 Hz would.
    faults:
        Optional :class:`~repro.reliability.FaultPlan` /
        :class:`~repro.reliability.FaultInjector` — enables the
        ``source.drop_batch`` point: a firing occurrence silently drops
        that batch in transit (the lossy-radio-uplink hazard), counted in
        :attr:`dropped_batches`.  Downstream detectors keep working —
        timestamps stay strictly increasing across a gap — but their
        outputs reflect the loss, which is exactly what loss-tolerance
        tests need to observe.
    """

    def __init__(
        self,
        tenant: str,
        day: Union[DayRecording, RssiTrace],
        *,
        stream_ids: Optional[Sequence[str]] = None,
        batch_samples: int = 256,
        faults: Optional[object] = None,
    ) -> None:
        if batch_samples < 1:
            raise ValueError("batch_samples must be >= 1")
        trace = day.trace if isinstance(day, DayRecording) else day
        self.tenant = str(tenant)
        self.stream_ids = (
            list(stream_ids) if stream_ids is not None else trace.stream_ids
        )
        self._trace = trace.restricted_view(self.stream_ids)
        self._batch_samples = int(batch_samples)
        self._faults = as_injector(faults)
        self.dropped_batches = 0

    @property
    def n_samples(self) -> int:
        return self._trace.n_samples

    def __iter__(self) -> Iterator[SampleBatch]:
        trace = self._trace
        n = trace.n_samples
        matrix = np.column_stack(
            [trace.streams[sid] for sid in self.stream_ids]
        )
        step = self._batch_samples
        for lo in range(0, n, step):
            hi = min(lo + step, n)
            if (
                self._faults is not None
                and self._faults.fired(SOURCE_DROP_BATCH) is not None
            ):
                self.dropped_batches += 1
                continue
            yield SampleBatch(
                tenant=self.tenant,
                times=trace.times[lo:hi],
                samples=matrix[lo:hi],
            )


def merge_by_time(
    sources: Iterable[StreamSource],
) -> Iterator[SampleBatch]:
    """Interleave many tenants' batch streams into global arrival order.

    A k-way heap merge on each batch's first timestamp (ties broken by
    source registration order, so the interleaving is deterministic).
    Every tenant's own batches keep their relative order — the property
    the router's per-tenant FIFO guarantee is tested against.
    """
    iterators = [iter(s) for s in sources]
    heap: List[tuple] = []
    for order, it in enumerate(iterators):
        first = next(it, None)
        if first is not None:
            heap.append((first.t_first, order, first, it))
    heapq.heapify(heap)
    while heap:
        _, order, batch, it = heapq.heappop(heap)
        yield batch
        nxt = next(it, None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.t_first, order, nxt, it))

"""Checkpoint serialisation: JSON round-trips that preserve every bit.

The streaming kernel's ``snapshot()`` dicts are plain JSON values, and
python's ``json`` encodes every float64 with ``repr``'s shortest
round-trip representation (NaN/Infinity as bare tokens) and decodes it
back to the identical bit pattern.  :func:`dumps_snapshot` /
:func:`loads_snapshot` are therefore *bit-preserving*: a detector
restored from the decoded dict continues its stream exactly as the
original would have — the property the reliability test suite locks with
hypothesis-random cut points.

:class:`CheckpointStore` adds the durability half: one atomic JSON file
per checkpoint key (temp file + ``fsync`` + ``os.replace``, the same
recipe as :class:`~repro.analysis.sweep_store.SweepStore` records), so a
process killed mid-write can never leave a torn checkpoint — readers see
either the previous complete snapshot or the new one.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "dumps_snapshot",
    "loads_snapshot",
    "CheckpointStore",
]


def dumps_snapshot(state: Dict[str, Any]) -> str:
    """Serialise a snapshot dict to JSON (floats bit-exact, NaN allowed)."""
    return json.dumps(state)


def loads_snapshot(text: str) -> Dict[str, Any]:
    """Decode a snapshot back to the bit-identical dict."""
    state = json.loads(text)
    if not isinstance(state, dict):
        raise ValueError(
            f"snapshot must decode to a dict, got {type(state).__name__}"
        )
    return state


def _key_filename(key: str) -> str:
    """A filesystem-safe, collision-free filename for a checkpoint key."""
    import hashlib

    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in key)[:60]
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:10]
    return f"{safe}.{digest}.ckpt.json"


class CheckpointStore:
    """Atomic per-key JSON snapshot files under one directory.

    Keys are arbitrary strings (tenant ids, worker names); each maps to
    one file written atomically, so concurrent readers and a crashing
    writer can never observe a torn snapshot.
    """

    def __init__(self, path: os.PathLike) -> None:
        self._path = Path(path)
        self._path.mkdir(parents=True, exist_ok=True)

    @property
    def path(self) -> Path:
        return self._path

    def file_for(self, key: str) -> Path:
        return self._path / _key_filename(key)

    def save(self, key: str, state: Dict[str, Any]) -> Path:
        """Atomically persist one snapshot; returns the file written."""
        target = self.file_for(key)
        text = dumps_snapshot(dict(state, checkpoint_key=key))
        fd, tmp = tempfile.mkstemp(
            dir=self._path, prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return target

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored snapshot for ``key``, or ``None`` if absent."""
        target = self.file_for(key)
        try:
            text = target.read_text()
        except OSError:
            return None
        state = loads_snapshot(text)
        state.pop("checkpoint_key", None)
        return state

    def keys(self) -> List[str]:
        """Checkpoint keys present on disk (sorted)."""
        found = []
        for file in self._path.glob("*.ckpt.json"):
            try:
                state = loads_snapshot(file.read_text())
            except (OSError, ValueError):
                continue
            key = state.get("checkpoint_key")
            if isinstance(key, str):
                found.append(key)
        return sorted(found)

    def delete(self, key: str) -> bool:
        try:
            self.file_for(key).unlink()
            return True
        except OSError:
            return False

"""Reliability layer: deterministic fault injection + lossless recovery.

Two halves, one discipline:

* :mod:`repro.reliability.faults` — a seeded, picklable
  :class:`FaultPlan` executed by a :class:`FaultInjector` at named
  injection points threaded through the *production* seams of the store,
  the lease protocol, the sweep workers and the streaming stack (no
  monkeypatching), so every chaos run is replayable bit for bit;
* :mod:`repro.reliability.checkpoint` — bit-preserving JSON snapshot
  serialisation plus an atomic per-key :class:`CheckpointStore`, the
  durability companion of the streaming kernel's ``snapshot()`` /
  ``restore()`` methods.

The recovery paths themselves live with the components they protect:
checksummed quarantine in :mod:`repro.analysis.sweep_store`, supervised
respawn in :func:`repro.analysis.sweep_queue.run_prioritized`, shard
restart / tenant quarantine policies in
:class:`repro.streaming.IngestRouter`.
"""

from .checkpoint import CheckpointStore, dumps_snapshot, loads_snapshot
from .faults import (
    HARD_CRASH_EXIT_CODE,
    KNOWN_POINTS,
    LEASE_CLOCK_SKEW,
    LEASE_HEARTBEAT_STALL,
    LEASE_UNLINK_RACE,
    ROUTER_SHARD_DEATH,
    SOURCE_DROP_BATCH,
    STORE_CORRUPT,
    STORE_FSYNC,
    STORE_READ,
    STORE_WRITE,
    WORKER_CRASH_AFTER_PUT,
    WORKER_CRASH_BEFORE_PUT,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    as_injector,
)

__all__ = [
    "CheckpointStore",
    "dumps_snapshot",
    "loads_snapshot",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "as_injector",
    "HARD_CRASH_EXIT_CODE",
    "KNOWN_POINTS",
    "STORE_READ",
    "STORE_WRITE",
    "STORE_FSYNC",
    "STORE_CORRUPT",
    "LEASE_HEARTBEAT_STALL",
    "LEASE_CLOCK_SKEW",
    "LEASE_UNLINK_RACE",
    "WORKER_CRASH_BEFORE_PUT",
    "WORKER_CRASH_AFTER_PUT",
    "SOURCE_DROP_BATCH",
    "ROUTER_SHARD_DEATH",
]

"""Deterministic, seeded fault injection through real seams.

The reliability layer's first principle is that failure handling can only
be trusted if failures are *reproducible*: a chaos run that cannot be
replayed bit-for-bit cannot be debugged, and a recovery path exercised by
``unittest.mock`` monkeypatching proves nothing about the seams production
code actually flows through.  This module therefore gives every
fault-tolerant component a first-class ``faults`` parameter instead:

* a :class:`FaultPlan` is a frozen, picklable description of *which*
  named injection points misbehave, *when* (explicit occurrence indices
  and/or a seeded Bernoulli rate) and *how* (a fault ``kind`` the seam
  interprets: raise, crash, corrupt, drop, stall, skew);
* a :class:`FaultInjector` executes one plan: per-point occurrence
  counters plus a per-point deterministic RNG derived from the plan seed
  and the point name, so the same plan fires at the same occurrences in
  every process that evaluates it — including worker processes the plan
  was pickled into;
* the **injection points** are real seams: components consult the
  injector at the exact place a disk, clock, network or process failure
  would surface (``SweepStore`` I/O, ``LeaseManager`` heartbeats,
  ``SweepWorker`` put boundaries, streaming sources and router shards),
  and the injected failure then flows through the *production* handling
  path — no test double ever substitutes for the code being proven.

Two exception types carry injected failures.  :class:`InjectedFault` is
an ordinary ``RuntimeError``: seams that simulate recoverable component
errors raise it (or translate it into the domain error a real failure
would produce, e.g. ``OSError`` for store I/O).  :class:`InjectedCrash`
derives from ``BaseException`` so it sails past ``except Exception``
recovery code exactly like a ``KeyboardInterrupt`` would — and a *hard*
crash (``hard=True``) calls ``os._exit``, giving the process no chance to
run ``finally`` blocks, the closest in-process stand-in for SIGKILL.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedCrash",
    "as_injector",
    "HARD_CRASH_EXIT_CODE",
    "KNOWN_POINTS",
    "STORE_READ",
    "STORE_WRITE",
    "STORE_FSYNC",
    "STORE_CORRUPT",
    "LEASE_HEARTBEAT_STALL",
    "LEASE_CLOCK_SKEW",
    "LEASE_UNLINK_RACE",
    "WORKER_CRASH_BEFORE_PUT",
    "WORKER_CRASH_AFTER_PUT",
    "SOURCE_DROP_BATCH",
    "ROUTER_SHARD_DEATH",
]

#: SweepStore record read: fires a transient I/O error (counted a miss,
#: the file is left in place — exactly what a real EIO does).
STORE_READ = "store.read"
#: SweepStore record write: ``put`` fails with ``OSError`` before the
#: atomic replace, leaving the previous record (or no record) intact.
STORE_WRITE = "store.write"
#: SweepStore durability barrier: the ``fsync`` before the atomic replace
#: fails, so the write aborts without publishing a maybe-unflushed record.
STORE_FSYNC = "store.fsync"
#: SweepStore record corruption: the serialised record is mangled on the
#: way to disk (bitrot / torn-sector stand-in); the checksum/parse path
#: must quarantine it on the next read.
STORE_CORRUPT = "store.corrupt"
#: LeaseManager heartbeat thread: skips renewal ticks, so a short-TTL
#: lease expires under a live owner and competitors may steal it.
LEASE_HEARTBEAT_STALL = "lease.heartbeat_stall"
#: LeaseManager wall clock: a constant skew (``payload`` seconds) applied
#: to every time read — the cross-host clock-disagreement hazard.
LEASE_CLOCK_SKEW = "lease.clock_skew"
#: LeaseManager expired-lease break: a competitor wins the unlink→link
#: race (a fresh foreign lease appears between our unlink and our link).
LEASE_UNLINK_RACE = "lease.unlink_race"
#: SweepWorker: crash at the instant *before* a scenario record is put —
#: the work is lost, the lease left to expire.
WORKER_CRASH_BEFORE_PUT = "worker.crash_before_put"
#: SweepWorker: crash immediately *after* a record is put — the record
#: survives, the lease is orphaned; recovery must not duplicate it.
WORKER_CRASH_AFTER_PUT = "worker.crash_after_put"
#: Streaming source: a sample batch is dropped in transit.
SOURCE_DROP_BATCH = "source.drop_batch"
#: IngestRouter shard worker: dies after computing a batch but before
#: recording it — the failure-policy layer must recover the tenant state.
ROUTER_SHARD_DEATH = "router.shard_death"

#: Every injection point threaded through the codebase.  Plans naming an
#: unknown point are rejected at construction — a typo in a chaos plan
#: must fail loudly, not silently inject nothing.
KNOWN_POINTS = frozenset(
    {
        STORE_READ,
        STORE_WRITE,
        STORE_FSYNC,
        STORE_CORRUPT,
        LEASE_HEARTBEAT_STALL,
        LEASE_CLOCK_SKEW,
        LEASE_UNLINK_RACE,
        WORKER_CRASH_BEFORE_PUT,
        WORKER_CRASH_AFTER_PUT,
        SOURCE_DROP_BATCH,
        ROUTER_SHARD_DEATH,
    }
)

#: Exit code of hard-crash injections (``os._exit``).  Distinct from 0,
#: from SIGTERM's 143 and from python's generic 1, so tests and the fleet
#: supervisor can tell an injected crash from every other death.
HARD_CRASH_EXIT_CODE = 70


class InjectedFault(RuntimeError):
    """A recoverable component failure raised at an injection point."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


class InjectedCrash(BaseException):
    """A process-death stand-in.

    Derives from ``BaseException`` so ordinary ``except Exception``
    recovery cannot swallow it: the worker dies, and only its supervisor
    (or an explicit chaos-aware harness) sees it again.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point!r}")
        self.point = point


@dataclass(frozen=True)
class FaultSpec:
    """When and how one injection point misbehaves.

    Attributes
    ----------
    point:
        Injection-point name (one of :data:`KNOWN_POINTS`).
    hits:
        Explicit 0-based occurrence indices at which the fault fires —
        occurrence ``n`` is the ``n``-th time the component consults this
        point.  Deterministic regardless of seed.
    probability:
        Additional per-occurrence Bernoulli fire rate, drawn from the
        plan-and-point-seeded RNG (so the realisation is deterministic
        too).  ``0.0`` fires only at ``hits``.
    max_fires:
        Cap on total fires of this spec; ``None`` is unbounded.
    kind:
        How the seam should misbehave: ``"error"`` (raise the failure a
        real fault would produce), ``"crash"`` (process death), and the
        seam-specific kinds ``"corrupt"``, ``"drop"``, ``"stall"``,
        ``"skew"``.
    payload:
        Kind-specific magnitude (e.g. clock-skew seconds).
    hard:
        For ``"crash"``: ``os._exit`` (SIGKILL-like, no ``finally``
        cleanup) instead of raising :class:`InjectedCrash`.
    """

    point: str
    hits: Tuple[int, ...] = ()
    probability: float = 0.0
    max_fires: Optional[int] = None
    kind: str = "error"
    payload: float = 0.0
    hard: bool = False

    def __post_init__(self) -> None:
        if self.point not in KNOWN_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; known points: "
                f"{sorted(KNOWN_POINTS)}"
            )
        object.__setattr__(
            self, "hits", tuple(int(h) for h in self.hits)
        )
        if any(h < 0 for h in self.hits):
            raise ValueError(f"hits must be >= 0, got {self.hits}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError(f"max_fires must be >= 1, got {self.max_fires}")
        if not self.hits and self.probability == 0.0:
            raise ValueError(
                f"spec for {self.point!r} can never fire: give hits or a "
                "positive probability"
            )


def _point_rng(seed: int, point: str) -> np.random.Generator:
    """A deterministic per-point generator, stable across processes.

    Derived from the plan seed and a SHA-256 digest of the point name —
    *not* python's salted ``hash`` — so a pickled plan realises the same
    Bernoulli draws in every worker that evaluates it.
    """
    digest = int.from_bytes(
        hashlib.sha256(point.encode("utf-8")).digest()[:8], "big"
    )
    return np.random.default_rng(np.random.SeedSequence([int(seed), digest]))


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, picklable chaos schedule: specs plus the realisation seed.

    One plan describes one process's worth of misbehaviour; build the
    executable side with :meth:`injector` (or pass the plan itself to a
    component — they accept either and build the injector internally).
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"specs must be FaultSpecs, got {spec!r}")

    @classmethod
    def of(cls, *specs: FaultSpec, seed: int = 0) -> "FaultPlan":
        return cls(specs=specs, seed=seed)

    def for_point(self, point: str) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.point == point)

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)


def as_injector(
    faults: "Optional[FaultPlan | FaultInjector]",
) -> "Optional[FaultInjector]":
    """Normalise a component's ``faults`` argument (plan, injector, None)."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return faults.injector()
    raise TypeError(
        f"faults must be a FaultPlan or FaultInjector, got {type(faults).__name__}"
    )


class _PointState:
    __slots__ = ("occurrences", "fires", "rng")

    def __init__(self, rng: np.random.Generator) -> None:
        self.occurrences = 0
        self.fires = 0
        self.rng = rng


class FaultInjector:
    """Executes one :class:`FaultPlan`: thread-safe, deterministic.

    Components call :meth:`fired` at their seams; the spec (or ``None``)
    tells them whether — and how — to misbehave at this occurrence.  All
    decision state (occurrence counters, Bernoulli streams) lives here,
    so the seam code stays a two-line guard.
    """

    def __init__(self, plan: FaultPlan) -> None:
        if not isinstance(plan, FaultPlan):
            raise TypeError(f"plan must be a FaultPlan, got {type(plan).__name__}")
        self._plan = plan
        self._lock = threading.Lock()
        self._points: Dict[str, _PointState] = {
            point: _PointState(_point_rng(plan.seed, point))
            for point in {s.point for s in plan.specs}
        }

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    # ------------------------------------------------------------------ #
    def fired(self, point: str) -> Optional[FaultSpec]:
        """Consult one injection point; return the firing spec or ``None``.

        Counts one *occurrence* of the point either way.  Of several
        specs on one point, the first that fires wins (plan order).
        """
        state = self._points.get(point)
        if state is None:
            return None
        with self._lock:
            occurrence = state.occurrences
            state.occurrences += 1
            for spec in self._plan.specs:
                if spec.point != point:
                    continue
                if spec.max_fires is not None and state.fires >= spec.max_fires:
                    continue
                hit = occurrence in spec.hits
                if not hit and spec.probability > 0.0:
                    hit = bool(state.rng.random() < spec.probability)
                elif spec.probability > 0.0:
                    # Keep the Bernoulli stream aligned with occurrences
                    # even on explicit hits, so adding a hit index never
                    # re-times every later probabilistic fire.
                    state.rng.random()
                if hit:
                    state.fires += 1
                    return spec
            return None

    def check(self, point: str) -> None:
        """Consult a point and apply the default effect of a firing spec.

        ``kind="error"`` raises :class:`InjectedFault`; ``kind="crash"``
        raises :class:`InjectedCrash` (or hard-exits the process).  Seams
        that interpret richer kinds use :meth:`fired` directly.
        """
        spec = self.fired(point)
        if spec is None:
            return
        self.apply(spec)

    def apply(self, spec: FaultSpec) -> None:
        """Raise/crash according to a spec already known to have fired."""
        if spec.kind == "crash":
            if spec.hard:
                os._exit(HARD_CRASH_EXIT_CODE)
            raise InjectedCrash(spec.point)
        raise InjectedFault(spec.point)

    def constant(self, point: str) -> Optional[FaultSpec]:
        """The first spec on a point, without counting an occurrence.

        Persistent conditions (clock skew) are properties, not events:
        components read them once instead of polling an occurrence
        stream.
        """
        for spec in self._plan.specs:
            if spec.point == point:
                return spec
        return None

    # ------------------------------------------------------------------ #
    def occurrences(self, point: str) -> int:
        state = self._points.get(point)
        with self._lock:
            return 0 if state is None else state.occurrences

    def fires(self, point: str) -> int:
        state = self._points.get(point)
        with self._lock:
            return 0 if state is None else state.fires

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-point ``{"occurrences": n, "fires": m}`` counters."""
        with self._lock:
            return {
                point: {
                    "occurrences": state.occurrences,
                    "fires": state.fires,
                }
                for point, state in sorted(self._points.items())
            }

"""repro — a reproduction of FADEWICH (ICDCS 2017).

FADEWICH (Fast Deauthentication over the Wireless Channel) automatically
deauthenticates office users when they walk away from their workstation, by
observing how their body perturbs the RSSI of packets exchanged among cheap
wireless sensors.  This package reimplements the full system and the
substrates its evaluation needs:

* :mod:`repro.core` — the FADEWICH contribution (KMA, MD, RE, controller,
  security / usability analysis),
* :mod:`repro.radio` — the simulated office radio testbed,
* :mod:`repro.mobility` — simulated users and movement schedules,
* :mod:`repro.workstation` — keyboard/mouse input and session state,
* :mod:`repro.ml` — from-scratch SVM / KDE / CV / mutual-information tools,
* :mod:`repro.simulation` — campaign collection harness,
* :mod:`repro.analysis` — per-table / per-figure reproduction code,
* :mod:`repro.streaming` — the incremental detection engine (bounded-state
  online kernel, stream sources, multi-tenant ingestion router),
* :mod:`repro.reliability` — deterministic fault injection and
  checkpoint/restore for the streaming and sweep stacks,
* :mod:`repro.features` — the reusable feature pipeline (extractor
  registry, content fingerprints, per-recording cached store),
* :mod:`repro.zones` — zone-occupancy inference from per-link
  attenuation, offline and streaming.

Quickstart
----------
>>> from repro import quick_campaign, FadewichConfig
>>> from repro.core import evaluate_md, build_sample_dataset
>>> recording = quick_campaign(seed=7)          # a small simulated campaign
>>> config = FadewichConfig()
>>> md = evaluate_md(recording, config, recording.layout.sensor_ids)
>>> md.counts.recall > 0.5
True
"""

from .core.config import FadewichConfig, MDConfig, REConfig
from .core.system import FadewichSystem
from .detectors import (
    EmaMadDetector,
    KdeMdDetector,
    VarianceThresholdDetector,
    detector_names,
    get_detector,
    register_detector,
)
from .features import FeatureStore, RollingStdExtractor, extractor_fingerprint
from .radio.office import OfficeLayout, paper_office, wide_office
from .reliability import CheckpointStore, FaultInjector, FaultPlan, FaultSpec
from .zones import (
    AttenuationExtractor,
    ZoneEngine,
    ZoneMap,
    ZoneOccupancyEstimator,
    score_walks,
)
from .analysis.sweep_queue import SweepWorker, run_prioritized
from .simulation.collector import CampaignCollector, CampaignRecording
from .simulation.runner import CampaignRunner, DayTask
from .streaming import IngestRouter, OnlineDetector

# 2.0.0: breaking — the seeding scheme moved to per-purpose SeedSequence
# streams (same seed now yields different, but still deterministic,
# campaigns than 1.x) and replay_day raises ValueError on empty traces.
# 2.1.0: columnar analysis engine — evaluate_md_grid / array replay_day /
# vectorised CV, bit-identical to the retained scalar references
# (evaluate_md_scalar, replay_day_scalar, cross_validated_predictions_scalar).
# 2.2.0: scenario-grid sweep engine — ScenarioGrid / ScenarioSweepRunner /
# SweepReport over CampaignRunner.run_tasks (heterogeneous day tasks),
# wide_office layout, FadewichConfig.derive / CampaignScale.derive axes;
# learning_curve now skips single-class training subsets and reports NaN
# ci95 for sizes with zero valid repeats.
# 2.3.0: root-finding threshold engine + shared-gram learning curve —
# mixture_quantiles (safeguarded Newton, warm starts, active rows) behind
# GaussianKDE.percentile and the lockstep profile grid (bisection retained
# as bisect_quantiles; thresholds re-pinned within the old tol=1e-6);
# slice-stable kernels, kernel="precomputed" SVC fits, incremental SMO
# error cache (original formulation retained behind error_cache=False),
# SVCFoldFitter shared-gram/warm-start learning-curve engine used by
# Figure 8; GaussianKDE.sample now requires an explicit Generator.
# 2.4.0: resumable sweep persistence — SweepStore (atomic per-scenario
# JSON records keyed by name + root-seed fingerprint + configuration
# content hash), ScenarioSweepRunner.run(store=...) with partial
# collection (warm store: zero day tasks, bit-identical report), full
# SweepReport round-trip serialization (save/load), per-cell replicate
# statistics (mean/std/ci95, NaN-safe); ScenarioGrid sensor-count
# normalisation, runner name-uniqueness validation, ragged Figure-7 curve
# rendering, quantize non-finite rejection.
# 2.5.0: incremental streaming detection engine — repro.streaming
# (OnlineDetector: bounded-state batch kernel bit-identical to the
# columnar offline path and the per-sample MovementDetector whatever the
# arrival batching; DayRecordingSource / merge_by_time stream sources;
# IngestRouter: per-tenant detectors on round-robin sharded workers with
# bounded queues and clean drain); replay_day is now a thin client of the
# kernel; SweepStore stale/miss taxonomy fixed (records of the requested
# scenario with a missing fingerprint block, mangled result or old format
# count as stale, foreign/corrupt files as misses — the three counters
# partition every lookup).
# 2.6.0: distributed sweep execution — repro.analysis.sweep_queue
# (LeaseManager: atomic hard-link claims with heartbeat TTL expiry;
# SweepWorker: claim → bit-identical partial recollection → put →
# release; run_prioritized: named grids in priority order over N worker
# processes, per-grid stores/logs, merged SWEEP_report.json);
# ScenarioSweepRunner.run grows a cooperative claim_filter mode;
# SweepStore record filenames are bounded and escape-proof, StoreStats is
# thread-safe (hits+misses+stale == lookups under concurrency);
# IngestRouter lifecycle edges (submit-after-close race, drain/close
# after failure) made deterministic.
# 2.7.0: pluggable detector zoo — repro.detectors (registry of frozen
# config dataclasses, each pairing an offline reference grid with a
# streaming engine proven bitwise-identical under arbitrary batch
# splits): KdeMdDetector (pure port of the KDE profile engines — golden
# numbers unchanged), EmaMadDetector (EMA + median/MAD hysteresis),
# VarianceThresholdDetector (rolling-variance baseline); *detector* is a
# first-class ScenarioGrid axis sharing one recording (and one feature
# matrix) across variants, part of ScenarioSpec.content_hash and the
# sweep-store fingerprint, grouped in SweepReport cell statistics plus a
# detector_comparison table, and hosted per-tenant by OnlineDetector /
# IngestRouter.
# 2.8.0: fault-injection harness + self-healing fleet — repro.reliability
# (FaultPlan/FaultInjector: seeded, picklable fault plans fired at named
# seams threaded through SweepStore I/O, LeaseManager, SweepWorker and
# the streaming sources/router; CheckpointStore + snapshot()/restore()
# across the whole streaming stack, JSON round-trips proven bitwise
# identical at arbitrary cut points for every registered detector);
# SweepStore records carry a SHA-256 payload checksum (format 2) and
# quarantine corrupt files to *.corrupt (new `corrupt` counter —
# hits+misses+stale+corrupt partition lookups); run_prioritized
# supervises its fleet (capped respawns, exponential backoff, fault-free
# replacements); SweepWorker releases leases on SIGTERM and discards
# results whose lease was stolen mid-collect; IngestRouter grows
# fail_fast / restart_shard (per-batch checkpoints) / quarantine
# (dead-letter records) failure policies with per-shard counters.
# 2.9.0: reusable feature store + zone-occupancy inference workload —
# repro.features (frozen-config extractor registry with SHA-256 content
# fingerprints; FeatureStore caches per-day (times, matrix, columns)
# blocks per recording keyed (fingerprint, day index) with
# identity-validated day membership; CampaignStdFeatures re-expressed as
# the rolling_std extractor bit-identically — no goldens re-pinned) and
# repro.zones (ZoneMap from Liang-Barsky link-crossing geometry,
# AttenuationExtractor against the log-distance baseline,
# ZoneOccupancyEstimator — rolling-mean smoothing, per-link median
# calibration, rectified excess, exclusivity-weighted zone scores —
# with a bounded-state ZoneEngine bitwise-identical under arbitrary
# batch splits, JSON-snapshotable, hosted per-tenant by OnlineDetector /
# IngestRouter; score_walks against ground-truth trajectories, seed-42
# goldens pinned); zone accuracy threaded through ScenarioSweepRunner
# (zone_estimator=, zone_accuracy payloads, zone_summary, feature/zone
# store-key fingerprints); EmaMadDetector long-window median/MAD
# dispatches to an indexable sorted window past the measured crossover.
__version__ = "2.9.0"

__all__ = [
    "AttenuationExtractor",
    "CampaignCollector",
    "CampaignRecording",
    "CampaignRunner",
    "CheckpointStore",
    "DayTask",
    "EmaMadDetector",
    "FadewichConfig",
    "FadewichSystem",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FeatureStore",
    "IngestRouter",
    "KdeMdDetector",
    "MDConfig",
    "OfficeLayout",
    "OnlineDetector",
    "REConfig",
    "RollingStdExtractor",
    "SweepWorker",
    "VarianceThresholdDetector",
    "ZoneEngine",
    "ZoneMap",
    "ZoneOccupancyEstimator",
    "__version__",
    "detector_names",
    "extractor_fingerprint",
    "get_detector",
    "paper_office",
    "quick_campaign",
    "register_detector",
    "run_prioritized",
    "score_walks",
    "wide_office",
]


def quick_campaign(
    seed: int = 0,
    n_days: int = 2,
    day_duration_s: float = 1200.0,
) -> CampaignRecording:
    """Collect a small simulated campaign with sensible defaults.

    A convenience wrapper for examples, tests and interactive exploration:
    builds the paper's office, draws an overlap-free movement schedule and
    records the RSSI traces, ground-truth events and input activity.

    Parameters
    ----------
    seed:
        Seed of all stochastic components.
    n_days:
        Number of simulated working days.
    day_duration_s:
        Length of each day in seconds (compact days keep the quickstart
        fast; use ``8 * 3600`` for paper-scale days).
    """
    from .mobility.behavior import BehaviorProfile

    layout = paper_office()
    collector = CampaignCollector(layout, seed=seed)
    # Compact days need a proportionally higher departure rate to produce a
    # useful number of labelled events.
    profile = BehaviorProfile(
        departures_per_hour=6.0,
        mean_absence_s=120.0,
        min_absence_s=45.0,
        internal_moves_per_hour=2.0,
    )
    profiles = {w.workstation_id: profile for w in layout.workstations}
    return collector.collect_generated(
        n_days=n_days, day_duration_s=day_duration_s, profiles=profiles
    )

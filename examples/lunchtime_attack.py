"""Lunchtime-attack scenario: can an insider hijack an unattended session?

Reproduces the paper's threat experiment: a victim walks away from their
workstation; an Insider (4 s away, outside the office) and a Co-worker
(already inside) both try to reach the victim's keyboard before the session
is deauthenticated.  The script compares the classic inactivity time-out
with FADEWICH at increasing sensor counts.

Run with::

    python examples/lunchtime_attack.py
"""

from __future__ import annotations

from repro import FadewichConfig
from repro.analysis.campaign import AnalysisContext, CampaignScale, collect_campaign
from repro.core.adversary import COWORKER, INSIDER, attack_opportunity_percentage
from repro.core.baseline import TimeoutBaseline
from repro.mobility.events import EventKind


def main() -> None:
    config = FadewichConfig()
    scale = CampaignScale(
        name="attack-demo",
        n_days=3,
        day_duration_s=1800.0,
        departures_per_hour=6.0,
        mean_absence_s=150.0,
        min_absence_s=45.0,
        internal_moves_per_hour=1.0,
    )
    print("Simulating three office days with an attacker watching the door...")
    recording = collect_campaign(seed=21, scale=scale)
    context = AnalysisContext(recording, config)

    departures = [
        e
        for day in recording.days
        for e in day.events
        if e.kind is EventKind.DEPARTURE
    ]
    print(f"  the victim users left their desks {len(departures)} times\n")

    baseline = TimeoutBaseline(timeout_s=config.timeout_s)
    insider_timeout = baseline.attack_opportunity_count(departures, INSIDER)
    coworker_timeout = baseline.attack_opportunity_count(departures, COWORKER)
    print(f"With a {config.timeout_s:.0f}-second inactivity time-out:")
    print(f"  Insider opportunities:   {insider_timeout}/{len(departures)}")
    print(f"  Co-worker opportunities: {coworker_timeout}/{len(departures)}")

    print("\nWith FADEWICH:")
    print(f"{'sensors':>8} | {'Insider':>8} | {'Co-worker':>9}")
    for n_sensors in (3, 5, 7, 9):
        outcomes = context.outcomes(n_sensors)
        insider_pct = attack_opportunity_percentage(outcomes, INSIDER)
        coworker_pct = attack_opportunity_percentage(outcomes, COWORKER)
        print(
            f"{n_sensors:>8} | {insider_pct:7.1f}% | {coworker_pct:8.1f}%"
        )
    print(
        "\nMore sensors close the attack window: the Insider, who needs four"
        "\nextra seconds to reach the desk, runs out of opportunities first."
    )


if __name__ == "__main__":
    main()

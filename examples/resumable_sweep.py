"""Resumable scenario sweeps: persist grid points, interrupt, resume.

Demonstrates the persistent sweep subsystem:

1. declare a replicated grid and run it against a :class:`SweepStore` —
   every completed scenario lands on disk as one atomically-written JSON
   record;
2. re-run the identical sweep: every record is reused, *zero* simulation
   work happens, and the report is bit-identical to the cold run;
3. simulate an interruption by deleting one scenario's record and resume:
   only the missing simulation's days are recollected (seed derivation is
   keyed by the full grid, so the recollected recording is bit-identical
   to the cold run's);
4. change a FADEWICH configuration *in place* (same axis name): the
   affected records are detected as stale via their configuration content
   hash and recomputed — never silently reused;
5. read the per-cell replicate statistics (mean / std / ci95 across the
   replicate axis) and round-trip the whole report through
   ``save``/``load``.

Run with::

    python examples/resumable_sweep.py
"""

from __future__ import annotations

import time

from repro import FadewichConfig, paper_office
from repro.analysis import CampaignScale, SweepReport, SweepStore
from repro.analysis.scenarios import ScenarioGrid, ScenarioSweepRunner

STORE_DIR = "resumable_sweep_store"
REPORT_PATH = "resumable_sweep_report.json"
SEED = 42
DAY_S = 1200.0  # compact 20-minute days keep the walkthrough quick


def make_grid(t_delta_s: float = 4.5) -> ScenarioGrid:
    scale = CampaignScale.compact().derive(
        "compact-2d", n_days=2, day_duration_s=DAY_S
    )
    return ScenarioGrid(
        layouts=[paper_office()],
        scales=[scale],
        configs={
            "default": FadewichConfig(),
            "tuned": FadewichConfig().derive(t_delta_s=t_delta_s),
        },
        n_replicates=3,
        sensor_counts=(3, 6, 9),
    )


def run_once(grid: ScenarioGrid, store: SweepStore, label: str) -> SweepReport:
    runner = ScenarioSweepRunner(
        grid, seed=SEED, mode="process", re_sensor_counts=()
    )
    t0 = time.perf_counter()
    report = runner.run(store=store)
    elapsed = time.perf_counter() - t0
    stats = runner.last_run_stats
    print(
        f"[{label}] {elapsed:6.2f}s  "
        f"cached {stats.n_cached}/{stats.n_scenarios} scenarios, "
        f"collected {stats.n_simulations} simulations "
        f"({stats.n_day_tasks} day tasks), analysed {stats.n_analyzed}"
    )
    return report


def main() -> None:
    grid = make_grid()
    store = SweepStore(STORE_DIR)
    store.clear()  # start the walkthrough from a genuinely cold store
    print(f"grid: {len(grid)} scenarios -> store at {store.path}/\n")

    # --- 1. cold run: everything is simulated and persisted ----------- #
    cold = run_once(grid, store, "cold  ")

    # --- 2. warm run: zero simulation, bit-identical report ----------- #
    warm = run_once(grid, store, "warm  ")
    assert warm.to_dict() == cold.to_dict()
    print("         warm report is bit-identical to the cold run\n")

    # --- 3. interrupt + resume: only the hole is recomputed ------------ #
    victim = cold.results[0].spec.name
    store.delete(victim)
    print(f"deleted record: {victim}")
    resumed = run_once(grid, store, "resume")
    assert resumed.to_dict() == cold.to_dict()
    print("         resumed report is bit-identical to the cold run\n")

    # --- 4. edited config: stale records recomputed, never reused ------ #
    edited = make_grid(t_delta_s=6.0)  # same axis name, different content
    store.reset_stats()
    run_once(edited, store, "edited")
    print(
        f"         store saw {store.stats.stale} stale records "
        f"(content hash changed) and {store.stats.hits} reusable ones\n"
    )

    # --- 5. replicate statistics + report round trip ------------------- #
    report_text = cold.render()
    print(report_text[report_text.index("replicate statistics"):])
    cold.save(REPORT_PATH)
    loaded = SweepReport.load(REPORT_PATH)
    assert loaded.to_dict() == cold.to_dict()
    print(f"\nreport round-tripped through {REPORT_PATH}")


if __name__ == "__main__":
    main()

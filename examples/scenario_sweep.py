"""Scenario-grid sweep: many offices and behaviours, one aggregate report.

Demonstrates the sweep engine:

1. declare a grid — layouts x behaviour scales x FADEWICH configs — with
   the ``derive`` helpers,
2. execute it reproducibly from one seed (all days of all scenarios share
   one worker pool; config-only variants share one simulated recording),
3. print the aggregate report (per-scenario Table-III-style rates plus the
   cross-scenario summary) and export it as JSON.

Run with::

    python examples/scenario_sweep.py
"""

from __future__ import annotations

import time

from repro import FadewichConfig, paper_office, wide_office
from repro.analysis import CampaignScale
from repro.analysis.scenarios import ScenarioGrid, ScenarioSweepRunner

DAY_S = 1200.0  # compact 20-minute days keep the walkthrough quick


def main() -> None:
    # --- 1. declare the grid ------------------------------------------ #
    compact = CampaignScale.compact().derive(
        "compact-2d", n_days=2, day_duration_s=DAY_S
    )
    busy = compact.derive("busy-2d", departures_per_hour=12.0)
    grid = ScenarioGrid(
        layouts=[paper_office(), wide_office()],
        scales=[compact, busy],
        configs={
            "default": FadewichConfig(),
            "strict-alpha": FadewichConfig().derive(md={"alpha": 0.5}),
        },
        sensor_counts=(3, 5, 7, 9),
    )
    print(f"grid: {len(grid)} scenarios")
    for spec in grid.scenarios():
        print(f"  [{spec.index}] {spec.name}")

    # --- 2. run it ----------------------------------------------------- #
    runner = ScenarioSweepRunner(grid, seed=42, mode="process")
    t0 = time.perf_counter()
    report = runner.run()
    elapsed = time.perf_counter() - t0
    print(f"\nswept {report.n_scenarios} scenarios in {elapsed:.1f}s\n")

    # --- 3. aggregate report + JSON export ---------------------------- #
    print(report.render())
    report.save("scenario_sweep_report.json")
    print("\nJSON report written to scenario_sweep_report.json")


if __name__ == "__main__":
    main()

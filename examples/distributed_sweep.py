"""Distributed sweeps: N worker processes cooperatively fill one store.

Demonstrates the lease-claim work queue of
:mod:`repro.analysis.sweep_queue`:

1. a serial reference run fills a cold :class:`SweepStore` — every grid
   point lands as one atomic JSON record;
2. two *worker processes* fill a second cold store cooperatively through
   :func:`run_prioritized`: each claims missing simulation keys with
   expiring lease files, collects them through the bit-identical
   partial-recollection path, and releases the claims — the merged report
   equals the serial one ``to_dict()``-exactly;
3. a crash is simulated: a stale lease (dead owner, expired heartbeat) is
   planted on a missing key, and a fresh worker reclaims it after its TTL
   and completes the grid — nothing lost, nothing duplicated;
4. the batch shape: two *named* grids run in priority order, each with
   its own store subdirectory and log file, merged into one
   ``SWEEP_report.json``.

Run with::

    python examples/distributed_sweep.py
"""

from __future__ import annotations

import time

from repro import FadewichConfig, paper_office
from repro.analysis import CampaignScale, SweepStore
from repro.analysis.scenarios import ScenarioGrid, ScenarioSweepRunner
from repro.analysis.sweep_queue import GridJob, SweepWorker, run_prioritized
from repro.analysis.sweep_store import name_slug

SEED = 42
DAY_S = 600.0  # compact 10-minute days keep the walkthrough quick
STORE_ROOT = "distributed_sweep_store"
REPORT_PATH = "distributed_sweep_report.json"


def make_grid(n_replicates: int = 6) -> ScenarioGrid:
    scale = CampaignScale.compact().derive(
        "dist-demo", n_days=1, day_duration_s=DAY_S
    )
    return ScenarioGrid(
        layouts=[paper_office()],
        scales=[scale],
        configs={
            "default": FadewichConfig(),
            "tuned": FadewichConfig().derive(t_delta_s=6.0),
        },
        n_replicates=n_replicates,
        sensor_counts=(3, 6),
    )


def main() -> None:
    grid = make_grid()
    job = GridJob(name="demo", grid=grid, seed=SEED, re_sensor_counts=())

    # --- 1. serial reference ------------------------------------------- #
    t0 = time.perf_counter()
    serial = job.make_runner().run()
    print(
        f"[serial] {len(serial.results)} scenarios in "
        f"{time.perf_counter() - t0:.2f}s"
    )

    # --- 2. two-process cooperative fill -------------------------------- #
    t0 = time.perf_counter()
    result = run_prioritized(
        [job],
        f"{STORE_ROOT}/fleet",
        workers=2,
        poll_interval_s=0.05,
        worker_timeout_s=300.0,
        log_dir=f"{STORE_ROOT}/logs",
        report_path=REPORT_PATH,
    )
    print(
        f"[fleet ] 2 workers in {time.perf_counter() - t0:.2f}s -> "
        f"{result.report_path}"
    )
    assert result.reports["demo"].to_dict() == serial.to_dict()
    print("         fleet report is bit-identical to the serial run")
    for line in result.log_paths["demo"].read_text().splitlines():
        if "[driver]" in line:
            print(f"         {line}")

    # --- 3. crash recovery: a stale lease is reclaimed ------------------ #
    store = SweepStore(f"{STORE_ROOT}/recovery")
    store.clear()
    worker = SweepWorker(
        job.make_runner(), store, lease_ttl_s=2.0, timeout_s=300.0
    )
    # Plant what a SIGKILL'd competitor leaves behind: a lease whose
    # heartbeat stopped long ago.
    dead_key = "paper-office/dist-demo/default/r0"
    store.lease_path(dead_key).write_text(
        '{"format": 1, "name": "%s", "owner": "dead-worker", '
        '"pid": 999999, "heartbeat": 0.0, "ttl_s": 2.0}\n' % dead_key
    )
    report = worker.run()
    assert report.to_dict() == serial.to_dict()
    assert not list(store.path.glob("*.lease"))
    print(
        "\n[crash ] stale lease reclaimed; grid completed with "
        f"{len(store.names())} records and no leftover leases"
    )

    # --- 4. prioritized named batches ----------------------------------- #
    batch = run_prioritized(
        {"high-priority": make_grid(2), "backfill": make_grid(3)},
        f"{STORE_ROOT}/batch",
        workers=1,
        log_dir=f"{STORE_ROOT}/logs",
        report_path=REPORT_PATH,
    )
    print(f"\n[batch ] ran grids in order {batch.order}")
    for name in batch.order:
        sub = name_slug(name)
        print(
            f"         {name}: {batch.reports[name].n_scenarios} scenarios "
            f"-> {STORE_ROOT}/batch/{sub}/"
        )
    print(f"         merged report at {REPORT_PATH}")


if __name__ == "__main__":
    main()

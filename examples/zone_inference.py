"""Zone-occupancy inference: where in the office is the walker?

Walks the full zone workload end to end:

1. partition the paper office into a 3-zone grid
   (:meth:`~repro.zones.map.ZoneMap.from_layout`) and see which radio
   links cross which zone (Liang-Barsky clipping of the sensor-to-sensor
   segments);
2. collect a compact seed-42 campaign and turn raw RSSI into per-link
   attenuation against the log-distance baseline
   (:class:`~repro.zones.attenuation.AttenuationExtractor`), cached in a
   :class:`~repro.features.store.FeatureStore` next to the detection
   features;
3. run the offline :class:`~repro.zones.estimator.ZoneOccupancyEstimator`
   over each day and score it against the ground-truth walker
   trajectories the campaign scheduler planned
   (:func:`~repro.zones.estimator.score_walks`);
4. replay the same day through the bounded-state streaming
   :class:`~repro.zones.estimator.ZoneEngine` — including a mid-stream
   JSON checkpoint — and verify it reproduces the offline grid bit for
   bit, the same equivalence contract the detection engines obey.

Run with::

    python examples/zone_inference.py
"""

from __future__ import annotations

import json

import numpy as np

from repro import paper_office
from repro.analysis import CampaignScale
from repro.features import FeatureStore
from repro.simulation.collector import CampaignCollector
from repro.zones import (
    ZoneEngine,
    ZoneMap,
    ZoneOccupancyEstimator,
    score_walks,
)

SEED = 42
N_DAYS = 2
DAY_S = 1200.0  # compact 20-minute days keep the walkthrough quick


def main() -> None:
    layout = paper_office()

    # 1. Zone geometry: which links cross which third of the office.
    zone_map = ZoneMap.from_layout(layout)  # 3 x 1 grid by default
    print(f"office {layout.width} x {layout.height} m, {zone_map.n_zones} zones")
    for zone in zone_map.zones:
        print(
            f"  {zone.name}: x in [{zone.x_min:.1f}, {zone.x_max:.1f}], "
            f"{len(zone.stream_ids)} crossing links"
        )

    # 2. A compact campaign with scheduled walker trajectories.
    scale = CampaignScale.compact().derive(
        "zone-demo", n_days=N_DAYS, day_duration_s=DAY_S
    )
    collector = CampaignCollector(layout, seed=SEED)
    schedule = collector.make_schedule(
        scale.n_days, scale.day_duration_s, scale.profiles_for(layout)
    )
    base = collector.next_generated_base()
    recording = collector.collect(schedule, seed_base=base)
    store = FeatureStore(recording)

    # 3. Offline estimation, scored against ground truth per day.
    estimator = ZoneOccupancyEstimator(zone_map=zone_map)
    total = None
    for day, day_schedule in zip(recording.days, schedule.days):
        times, grid = estimator.day_grid(day, layout, store=store)
        walks = collector.day_walks(day_schedule, seed_base=base)
        trajectories = [
            traj for walk_list in walks.values() for (_, traj, _) in walk_list
        ]
        acc = score_walks(zone_map, times, grid.occupied, trajectories)
        total = acc if total is None else total + acc
        decided = int((grid.occupied >= 0).sum())
        print(
            f"day {day.day_index}: {len(trajectories)} walks, "
            f"{decided} occupied instants, "
            f"day accuracy {acc.accuracy:.3f} over {acc.n_instants} instants"
        )
    print(
        f"campaign: accuracy {total.accuracy:.3f}, "
        f"coverage {total.coverage:.3f} over {total.n_instants} instants "
        f"(store: {store.misses} blocks computed, {store.hits} cache hits)"
    )

    # 4. The streaming twin: batch replay + mid-stream JSON checkpoint,
    #    bit-identical to the offline grid (the PR 6/8 contract).
    day = recording.days[0]
    trace = day.trace
    ids = trace.stream_ids
    rssi = np.column_stack([trace.streams[sid] for sid in ids])
    _, offline = estimator.day_grid(day, layout, store=store)

    engine = estimator.streaming_engine(ids, layout)
    cut = rssi.shape[0] // 3
    first = engine.extend(rssi[:cut])
    checkpoint = json.dumps(engine.snapshot())  # plain JSON, wire-safe
    resumed = ZoneEngine.from_snapshot(json.loads(checkpoint))
    rest = resumed.extend(rssi[cut:])
    scores = np.concatenate([first.scores, rest.scores])
    occupied = np.concatenate([first.occupied, rest.occupied])

    # equal_nan: scores are NaN inside the calibration window on both paths
    assert np.array_equal(scores, offline.scores, equal_nan=True)
    assert np.array_equal(occupied, offline.occupied)
    print(
        f"streaming twin: {cut} + {rssi.shape[0] - cut} samples through a "
        f"{len(checkpoint)}-byte checkpoint, bit-identical to offline"
    )


if __name__ == "__main__":
    main()

"""Quickstart: simulate a small office campaign and evaluate FADEWICH.

Collects a compact simulated campaign in the paper's 6 m x 3 m office,
runs the Movement Detection module offline, trains the Radio Environment
classifier on the detected events and reports how quickly departing users
would have been deauthenticated.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import FadewichConfig, quick_campaign
from repro.core import (
    build_sample_dataset,
    cross_validated_predictions,
    departure_outcomes,
    evaluate_md,
)
from repro.core.security import case_counts, deauthentication_curve


def main() -> None:
    config = FadewichConfig()

    print("Collecting a compact simulated campaign (2 days x 20 minutes)...")
    recording = quick_campaign(seed=7, n_days=2, day_duration_s=1200.0)
    print(f"  labelled events: {recording.label_counts()}")

    print("\nRunning Movement Detection over the recorded RSSI traces...")
    evaluation = evaluate_md(recording, config, recording.layout.sensor_ids)
    counts = evaluation.counts
    print(
        f"  TP={counts.tp}  FP={counts.fp}  FN={counts.fn}  "
        f"recall={counts.recall:.2f}  precision={counts.precision:.2f}"
    )

    print("\nTraining the Radio Environment classifier (5-fold CV)...")
    re_module, dataset = build_sample_dataset(evaluation, config)
    predictions = cross_validated_predictions(
        re_module, dataset, rng=np.random.default_rng(0)
    )
    correct = sum(
        1 for i, label in predictions.items() if dataset.samples[i].label == label
    )
    if predictions:
        print(f"  out-of-fold accuracy: {correct / len(predictions):.2f} "
              f"({len(dataset)} samples)")

    print("\nDeauthentication outcomes per departure (decision-tree cases):")
    outcomes = departure_outcomes(evaluation, dataset, predictions, config)
    for case, n in case_counts(outcomes).items():
        print(f"  case {case.value}: {n}")
    times, percent = deauthentication_curve(outcomes, max_time_s=10.0)
    for checkpoint in (4.0, 6.0, 8.0, 10.0):
        idx = int(np.searchsorted(times, checkpoint))
        idx = min(idx, len(times) - 1)
        print(
            f"  deauthenticated within {checkpoint:>4.0f} s: {percent[idx]:5.1f}%"
        )


if __name__ == "__main__":
    main()

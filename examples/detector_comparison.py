"""Detector zoo: sweep one grid with three detectors, pick a winner.

Demonstrates the detector axis end to end:

1. declare a grid whose ``detectors`` axis carries the whole zoo — the
   paper's KDE profile detector, the EMA + median/MAD hysteresis
   detector and the rolling-variance baseline — plus a tuned variant
   under its own label,
2. run the sweep: detector variants share one simulated recording and
   one rolling-std feature matrix per config, so four detectors cost
   little more than one,
3. read the per-cell ``detector_comparison()`` table ("which detector
   wins where"), and
4. replay the winning detector through the streaming ``OnlineDetector``
   to show the same zoo member serving the online path.

Run with::

    python examples/detector_comparison.py
"""

from __future__ import annotations

import time

from repro import (
    EmaMadDetector,
    KdeMdDetector,
    VarianceThresholdDetector,
    paper_office,
)
from repro.analysis import CampaignScale
from repro.analysis.scenarios import ScenarioGrid, ScenarioSweepRunner
from repro.streaming import DayRecordingSource, OnlineDetector

DAY_S = 1200.0  # compact 20-minute days keep the walkthrough quick


def main() -> None:
    # --- 1. declare the zoo grid --------------------------------------- #
    compact = CampaignScale.compact().derive(
        "compact-2d", n_days=2, day_duration_s=DAY_S
    )
    busy = compact.derive("busy-2d", departures_per_hour=12.0)
    grid = ScenarioGrid(
        layouts=[paper_office()],
        scales=[compact, busy],
        sensor_counts=(3, 6, 9),
        detectors={
            "kde_md": KdeMdDetector(),
            "ema_mad": EmaMadDetector(),
            "variance": VarianceThresholdDetector(),
            # Tuned variants live under their own label; the content
            # hash keeps their sweep records distinct from the default's.
            "variance-tight": VarianceThresholdDetector(threshold_scale=2.5),
        },
    )
    print(f"grid: {len(grid)} scenarios ({len(grid.detectors)} detectors)")

    # --- 2. run it ------------------------------------------------------ #
    runner = ScenarioSweepRunner(grid, seed=42, mode="serial")
    t0 = time.perf_counter()
    report = runner.run()
    print(f"swept {report.n_scenarios} scenarios in "
          f"{time.perf_counter() - t0:.1f}s\n")

    # --- 3. which detector wins where? --------------------------------- #
    print(report.render())
    wins: dict = {}
    for row in report.detector_comparison():
        wins[row["best_detector"]] = wins.get(row["best_detector"], 0) + 1
    overall = max(wins, key=wins.__getitem__)
    print(f"\ncells won per detector: {wins}")
    print(f"overall winner: {overall}")

    # --- 4. the same member drives the streaming service --------------- #
    winner = grid.detectors[overall]
    result = next(
        r for r in report.results if r.spec.detector_name == overall
    )
    day = result.recording.days[0]
    source = DayRecordingSource("office-0", day, batch_samples=256)
    online = OnlineDetector(
        source.stream_ids, result.spec.config.md, detector=winner
    )
    n_anomalous = 0
    for batch in source:
        block = online.process_block(batch.times, batch.samples)
        n_anomalous += int(block.anomalous.sum())
    online.finalize()
    print(
        f"\nstreamed day 0 through {type(winner).__name__}: "
        f"{n_anomalous} anomalous samples, "
        f"{len(online.completed_windows)} variation windows"
    )


if __name__ == "__main__":
    main()

"""Online replay: run the assembled FADEWICH system over one recorded day.

Unlike the offline evaluation used for the paper's tables, this example
wires the full online pipeline — Movement Detection fed sample by sample,
the Quiet/Noisy controller, Rule 1 and Rule 2, the workstation session
state machines — and replays a recorded day through it, printing every
action the system takes.

Run with::

    python examples/online_replay.py
"""

from __future__ import annotations

from repro import FadewichConfig, quick_campaign
from repro.core import build_sample_dataset, evaluate_md
from repro.core.system import FadewichSystem


def main() -> None:
    config = FadewichConfig()

    print("Collecting two simulated days (day 1 trains, day 2 is replayed)...")
    recording = quick_campaign(seed=11, n_days=2, day_duration_s=1200.0)

    # Train the RE classifier on the first day's detections.
    training_recording = type(recording)(days=[recording.days[0]], layout=recording.layout)
    evaluation = evaluate_md(training_recording, config, recording.layout.sensor_ids)
    re_module, dataset = build_sample_dataset(evaluation, config)
    print(f"  training samples: {len(dataset)} ({dataset.label_counts()})")

    system = FadewichSystem(
        stream_ids=re_module.stream_ids,
        workstation_ids=recording.layout.workstation_ids,
        config=config,
    )
    if len(set(dataset.labels)) >= 2:
        system.train(dataset)
        print("  RE classifier trained.")
    else:
        print("  not enough label variety to train RE; running detection only.")

    print("\nReplaying day 2 through the live system...")
    day = recording.days[1]
    report = system.replay_day(day)

    print(f"  ground-truth departures: {len(day.events.departures())}")
    print(f"  ground-truth entries:    {len(day.events.entries())}")
    print(f"  Rule-1 deauthentications: {report.deauthentications}")
    print(f"  Rule-2 alert activations: {report.alerts}")
    print(f"  screen savers started:    {report.screensavers}")

    print("\nController action log:")
    for action in report.actions[:20]:
        label = f" (RE said {action.predicted_label})" if action.predicted_label else ""
        print(
            f"  t={action.time:8.2f}s  rule {action.rule}:"
            f" {action.action:<15} {action.workstation_id}{label}"
        )
    if len(report.actions) > 20:
        print(f"  ... and {len(report.actions) - 20} more actions")

    print("\nFinal session states:")
    for workstation_id, state in report.final_states.items():
        print(f"  {workstation_id}: {state.value}")


if __name__ == "__main__":
    main()

"""Multi-tenant streaming service: one detection backend, many offices.

The load-generator companion of the streaming engine: several simulated
offices (tenants) replay their recorded days as timestamped sample
batches, a k-way merge interleaves them into one global arrival sequence
— exactly what a shared ingestion endpoint would see — and an
:class:`~repro.streaming.router.IngestRouter` fans the batches out to
sharded detector workers with bounded queues.

After the drain, every tenant's decision stream is compared bit-for-bit
against a standalone single-tenant detector fed the same day: sharding,
interleaving and backpressure leave no trace in the output.

Run with::

    python examples/streaming_service.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import quick_campaign
from repro.core.config import MDConfig
from repro.streaming import (
    DayRecordingSource,
    IngestRouter,
    OnlineDetector,
    merge_by_time,
)

N_TENANTS = 8
N_WORKERS = 4
QUEUE_CAPACITY = 16
BATCH_SAMPLES = 128


def main() -> None:
    config = MDConfig(profile_init_s=30.0)

    print(f"Collecting a recorded campaign shared by {N_TENANTS} offices...")
    recording = quick_campaign(seed=23, n_days=2, day_duration_s=1200.0)

    # Each office monitors its own sensor subset of one recorded day —
    # eight independent deployments hitting the same backend.
    rng = np.random.default_rng(5)
    all_ids = recording.days[0].trace.stream_ids
    feeds = []
    for i in range(N_TENANTS):
        day = recording.days[i % recording.n_days]
        ids = sorted(rng.choice(all_ids, size=4 + (i % 3), replace=False))
        feeds.append((f"office-{i}", day, ids))

    print(
        f"Routing {N_TENANTS} tenants through {N_WORKERS} workers "
        f"(queues bounded at {QUEUE_CAPACITY} batches)..."
    )
    t0 = time.perf_counter()
    with IngestRouter(
        n_workers=N_WORKERS,
        queue_capacity=QUEUE_CAPACITY,
        config=config,
    ) as router:
        for tenant, day, ids in feeds:
            router.register(tenant, ids)
        sources = [
            DayRecordingSource(
                tenant, day, stream_ids=ids, batch_samples=BATCH_SAMPLES
            )
            for tenant, day, ids in feeds
        ]
        # The load generator: batches from all tenants, in arrival order.
        for batch in merge_by_time(sources):
            router.submit(batch)
        router.drain()
        elapsed = time.perf_counter() - t0
        stats = router.stats
        print(
            f"  {stats.batches_processed} batches / "
            f"{stats.samples_processed} samples in {elapsed:.2f}s "
            f"({stats.samples_processed / elapsed:,.0f} samples/s); "
            f"deepest queue: {stats.max_queue_depth}"
        )

        print("\nPer-tenant results (vs. a standalone detector):")
        for tenant, day, ids in feeds:
            state = router.tenant_state(tenant)
            stream = state.concatenated()

            reference = OnlineDetector(ids, config)
            trace = day.trace.restricted_view(ids)
            matrix = np.column_stack([trace.streams[sid] for sid in ids])
            want = reference.process_block(trace.times, matrix)

            identical = np.array_equal(
                stream.decisions, want.decisions
            ) and np.array_equal(stream.durations, want.durations)
            n_windows = len(state.detector.completed_windows)
            n_anomalous = int(np.count_nonzero(stream.decisions == 1))
            print(
                f"  {tenant} (shard {state.shard}, {len(ids)} streams): "
                f"{state.n_samples} samples, {n_anomalous} anomalous, "
                f"{n_windows} variation windows, "
                f"bit-identical: {identical}"
            )
            assert identical, f"{tenant}: router output diverged!"

    print("\nEvery tenant's stream matched the standalone kernel exactly.")


if __name__ == "__main__":
    main()

"""Chaos engineering the sweep fleet: inject faults, watch it self-heal.

Demonstrates :mod:`repro.reliability` end to end:

1. declare a seeded :class:`FaultPlan` — deterministic faults fired at
   named seams (``store.corrupt``, ``worker.crash_before_put``, ...); the
   same plan realises the same fault sequence in every process, so every
   chaos run is reproducible;
2. corrupt a store record on disk and watch the checksum layer catch it:
   the mangled file is quarantined to ``*.corrupt``, counted in
   ``StoreStats``, and the scenario is transparently recomputed;
3. run a two-worker :func:`run_prioritized` fleet where worker 0
   hard-crashes mid-grid (``os._exit``, leases left on disk): the
   supervisor respawns the slot fault-free, TTL expiry frees the
   corpse's keys, and the healed report is bit-identical to a fault-free
   serial run;
4. checkpoint a live streaming detector mid-stream
   (``snapshot()`` → JSON → ``from_snapshot``) and finish on the restored
   copy — the reassembled decision stream matches an uninterrupted run
   bit for bit.

Run with::

    python examples/chaos_sweep.py
"""

from __future__ import annotations

import shutil

import numpy as np

from repro import FadewichConfig, paper_office, quick_campaign
from repro.analysis import CampaignScale, SweepStore
from repro.analysis.scenarios import ScenarioGrid, ScenarioSweepRunner
from repro.analysis.sweep_queue import GridJob, run_prioritized
from repro.analysis.sweep_store import name_slug
from repro.core.config import MDConfig
from repro.reliability import (
    STORE_CORRUPT,
    WORKER_CRASH_BEFORE_PUT,
    FaultPlan,
    FaultSpec,
    dumps_snapshot,
    loads_snapshot,
)
from repro.streaming import OnlineDetector

SEED = 42
DAY_S = 600.0  # compact 10-minute days keep the walkthrough quick
STORE_ROOT = "chaos_sweep_store"


def make_grid() -> ScenarioGrid:
    scale = CampaignScale.compact().derive(
        "chaos-demo", n_days=1, day_duration_s=DAY_S
    )
    return ScenarioGrid(
        layouts=[paper_office()],
        scales=[scale],
        configs={"default": FadewichConfig()},
        n_replicates=6,
        sensor_counts=(3,),
    )


def main() -> None:
    shutil.rmtree(STORE_ROOT, ignore_errors=True)
    grid = make_grid()

    # --- 1. the fault-free reference ------------------------------------ #
    serial = ScenarioSweepRunner(
        grid, seed=SEED, mode="serial", re_sensor_counts=()
    ).run()
    serial_dict = serial.to_dict()
    print(f"reference: {serial.n_scenarios} scenarios, fault-free serial run")

    # --- 2. checksummed records catch silent corruption ------------------ #
    # A plan is just data: frozen, seeded, picklable.  This one truncates
    # the first record this store writes — a simulated half-written file
    # or bit-rotted disk block.
    store = SweepStore(
        f"{STORE_ROOT}/corruption-demo",
        faults=FaultPlan.of(FaultSpec(point=STORE_CORRUPT, hits=(0,))),
    )
    runner = ScenarioSweepRunner(
        grid, seed=SEED, mode="serial", re_sensor_counts=()
    )
    runner.run(store=store)
    # The mangled record fails its SHA-256 check on the next read: it is
    # quarantined (never trusted, never deleted) and simply recomputed.
    healed = ScenarioSweepRunner(
        grid, seed=SEED, mode="serial", re_sensor_counts=()
    ).run(store=store)
    stats = store.stats.as_dict()
    print(
        f"corruption: {stats['corrupt']} record quarantined "
        f"({len(store.corrupt_files())} *.corrupt file), "
        f"healed report identical: {healed.to_dict() == serial_dict}"
    )

    # --- 3. a supervised fleet survives a hard worker crash -------------- #
    # Worker 0 calls os._exit before its first put: no unwind, no lease
    # release — the ugliest way a box can die.  The supervisor respawns
    # the slot (fault-free, fresh owner id), the dead worker's leases
    # expire after their TTL, and the grid still completes exactly.
    result = run_prioritized(
        [GridJob(name="chaos", grid=grid, seed=SEED, re_sensor_counts=())],
        f"{STORE_ROOT}/fleet",
        workers=2,
        lease_ttl_s=2.0,
        poll_interval_s=0.05,
        worker_timeout_s=600.0,
        log_dir=f"{STORE_ROOT}/logs",
        report_path=None,
        mp_context="fork",
        max_worker_respawns=2,
        respawn_backoff_s=0.1,
        worker_faults={
            0: FaultPlan.of(
                FaultSpec(
                    point=WORKER_CRASH_BEFORE_PUT,
                    hits=(0,),
                    kind="crash",
                    hard=True,
                )
            )
        },
    )
    fleet_store = SweepStore(f"{STORE_ROOT}/fleet/{name_slug('chaos')}")
    log_text = result.log_paths["chaos"].read_text(encoding="utf-8")
    respawns = [line for line in log_text.splitlines() if "respawn" in line]
    print(
        f"fleet: healed report identical: "
        f"{result.reports['chaos'].to_dict() == serial_dict}, "
        f"leases left: {len(list(fleet_store.path.glob('*.lease')))}"
    )
    for line in respawns:
        print(f"  {line}")

    # --- 4. checkpoint/restore a live streaming detector ----------------- #
    recording = quick_campaign(seed=SEED, n_days=1, day_duration_s=DAY_S)
    day = recording.days[0]
    ids = list(day.trace.stream_ids[:3])
    trace = day.trace.restricted_view(ids)
    matrix = np.column_stack([trace.streams[sid] for sid in ids])
    cfg = MDConfig(profile_init_s=30.0)

    uncut = OnlineDetector(ids, cfg, sample_rate_hz=4.0)
    want = uncut.process_block(trace.times, matrix)

    cut = len(trace.times) // 2
    head = OnlineDetector(ids, cfg, sample_rate_hz=4.0)
    got_head = head.process_block(trace.times[:cut], matrix[:cut])
    wire = dumps_snapshot(head.snapshot())  # plain JSON: survives any kill
    restored = OnlineDetector.from_snapshot(loads_snapshot(wire))
    got_tail = restored.process_block(trace.times[cut:], matrix[cut:])
    identical = bool(
        np.array_equal(
            np.concatenate([got_head.decisions, got_tail.decisions]),
            want.decisions,
        )
        and np.array_equal(
            np.concatenate([got_head.std_sums, got_tail.std_sums]),
            want.std_sums,
            equal_nan=True,  # the rolling-std warm-up head is NaN
        )
    )
    print(
        f"checkpoint: killed at sample {cut}/{len(trace.times)}, "
        f"restored from {len(wire)} bytes of JSON, "
        f"stream bit-identical: {identical}"
    )


if __name__ == "__main__":
    main()

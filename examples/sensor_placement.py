"""Sensor-placement study: how many sensors does an office need?

The paper's future-work section asks whether the wireless devices already
present in an office would be enough.  This example sweeps the number of
deployed sensors and reports detection recall, classification accuracy and
the usability cost, so a deployer can pick the smallest deployment meeting
their security target.

Run with::

    python examples/sensor_placement.py
"""

from __future__ import annotations

from repro import FadewichConfig
from repro.analysis.campaign import AnalysisContext, CampaignScale, collect_campaign
from repro.analysis.usability_eval import build_usability_inputs
from repro.core.usability import UsabilitySimulator


def main() -> None:
    config = FadewichConfig()
    scale = CampaignScale(
        name="placement-demo",
        n_days=3,
        day_duration_s=1800.0,
        departures_per_hour=6.0,
        mean_absence_s=150.0,
        min_absence_s=45.0,
        internal_moves_per_hour=1.5,
    )
    print("Simulating the office and sweeping the sensor deployment...\n")
    recording = collect_campaign(seed=5, scale=scale)
    context = AnalysisContext(recording, config)

    header = (
        f"{'sensors':>8} | {'MD recall':>9} | {'MD precision':>12} | "
        f"{'RE accuracy':>11} | {'cost s/day':>10}"
    )
    print(header)
    print("-" * len(header))
    for n_sensors in range(3, context.max_sensors + 1):
        counts = context.md_evaluation(n_sensors).counts
        accuracy = context.re_accuracy(n_sensors)
        inputs = build_usability_inputs(context, n_sensors)
        usability = UsabilitySimulator(config).run(inputs, n_draws=10)
        print(
            f"{n_sensors:>8} | {counts.recall:9.2f} | {counts.precision:12.2f} | "
            f"{accuracy:11.2f} | {usability.cost_per_day_s:10.1f}"
        )

    print(
        "\nReading the table: recall (how many departures are noticed at all)"
        "\nsaturates first; classification accuracy keeps improving with more"
        "\nsensors, which is what removes the co-worker's attack window."
    )


if __name__ == "__main__":
    main()

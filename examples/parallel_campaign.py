"""Parallel campaign collection with the batch engine and CampaignRunner.

Demonstrates the vectorised simulation spine:

1. one day collected with the batch engine vs. the scalar reference
   (identical output, an order of magnitude faster),
2. a five-day campaign fanned out over a process pool,
3. a fleet of independent campaigns, each with its own derived child seed
   (reproducible from the single root seed).

Run with::

    python examples/parallel_campaign.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import paper_office
from repro.mobility.behavior import BehaviorProfile
from repro.mobility.scheduler import ScheduleGenerator
from repro.simulation.collector import CampaignCollector
from repro.simulation.runner import CampaignRunner

DAY_S = 2400.0  # a compact 40-minute working day


def compact_profiles(layout):
    profile = BehaviorProfile(
        departures_per_hour=6.5,
        mean_absence_s=150.0,
        min_absence_s=45.0,
        internal_moves_per_hour=2.0,
    )
    return {w.workstation_id: profile for w in layout.workstations}


def main() -> None:
    layout = paper_office()
    profiles = compact_profiles(layout)

    # --- 1. batch vs scalar on one day -------------------------------- #
    collector = CampaignCollector(layout, seed=42)
    generator = ScheduleGenerator(layout, profiles, rng=np.random.default_rng(7))
    day = generator.generate_day(0, DAY_S)

    t0 = time.perf_counter()
    batch = collector.collect_day(day)
    t_batch = time.perf_counter() - t0
    t0 = time.perf_counter()
    scalar = collector.collect_day_scalar(day)
    t_scalar = time.perf_counter() - t0

    sid = batch.trace.stream_ids[0]
    identical = np.array_equal(batch.trace.streams[sid], scalar.trace.streams[sid])
    print(f"one {DAY_S:.0f}s day, {batch.trace.n_samples} steps:")
    print(f"  scalar engine: {t_scalar:6.2f}s")
    print(f"  batch engine:  {t_batch:6.2f}s  ({t_scalar / t_batch:.1f}x faster)")
    print(f"  traces bit-identical: {identical}")

    # --- 2. a campaign fanned out over workers ------------------------ #
    runner = CampaignRunner(layout, seed=42, mode="process")
    t0 = time.perf_counter()
    campaign = runner.run_generated(n_days=5, day_duration_s=DAY_S, profiles=profiles)
    t_run = time.perf_counter() - t0
    print(f"\nfive-day campaign via process pool: {t_run:.2f}s")
    print(f"  labelled events: {campaign.total_labelled_events()}")
    print(f"  label histogram: {campaign.label_counts()}")

    # --- 3. a reproducible fleet of independent campaigns ------------- #
    schedule = ScheduleGenerator(
        layout, profiles, rng=np.random.default_rng(1)
    ).generate_campaign(2, DAY_S)
    fleet_runner = CampaignRunner(layout, seed=7, mode="process")
    t0 = time.perf_counter()
    fleet = fleet_runner.run_many([schedule] * 4)
    t_fleet = time.perf_counter() - t0
    print(f"\nfour independent campaigns (same schedule, child seeds): {t_fleet:.2f}s")
    for i, recording in enumerate(fleet):
        print(
            f"  campaign {i}: {recording.total_departures()} departures, "
            f"seed {fleet_runner.campaign_seed(i).spawn_key}"
        )


if __name__ == "__main__":
    main()
